// Package membership is the cluster's runtime registry: who the members
// are, which member owns each ledger location, and how ownership moves
// when nodes join, leave, or crash.
//
// The unit of truth is the epoch-versioned Table. A Table is immutable
// once published: every change (join, leave, failover) derives a new
// Table with Epoch+1 via Joined/Left and installs it in the Registry
// with an epoch compare-and-swap, so stale tables can never overwrite
// newer ones no matter how broadcasts race.
//
// Ownership placement uses rendezvous (highest-random-weight) hashing:
// each (member, location) pair gets a deterministic score and the
// highest-scoring member wins the location. Rendezvous hashing is the
// *policy* that decides which locations move; the Table's Owners map is
// the *record* of where each location actually lives, which only changes
// after the corresponding ledger handoff completed (make-before-break —
// see the cluster layer). Explicit pins override the hash: a pinned
// location stays with its pinned owner through any churn until the
// owner itself departs.
//
// The runner-up of the same hash is the location's warm standby: the
// node that receives gossip-shipped ledger shadows and is promoted when
// the primary crashes. Because removing the top-scoring member makes
// the runner-up the new winner, a crash promotes exactly the node that
// has been warming.
package membership

import (
	"fmt"
	"hash/fnv"
	"sort"

	"repro/internal/resource"
)

// Member is one cluster node as the registry sees it.
type Member struct {
	ID  string `json:"id"`
	URL string `json:"url"`
}

// Move is one ownership transfer the policy decided: location Loc moves
// from member From to member To. From is empty when the location was
// previously unowned (a pin for a brand-new location).
type Move struct {
	Loc  resource.Location `json:"loc"`
	From string            `json:"from"`
	To   string            `json:"to"`
}

// Table is one epoch of the cluster's membership and ownership state.
// Treat a published Table as immutable; derive changes with Joined/Left
// (or Clone for tests).
type Table struct {
	// Epoch increases by exactly one per published change.
	Epoch uint64
	// Members is the roster, sorted by ID.
	Members []Member
	// Owners records which member currently serves each location. This
	// reflects completed handoffs, not the hash's current preference.
	Owners map[resource.Location]string
	// Pins overrides the hash: a pinned location never moves to a
	// better-scoring joiner. The pin dies with its owner.
	Pins map[resource.Location]string
}

// NewTable builds the epoch-1 seed table from a static roster.
// Ownership starts exactly as configured; nothing is pinned, so later
// joins may rebalance any location.
func NewTable(members []Member, owners map[resource.Location]string) *Table {
	t := &Table{
		Epoch:   1,
		Members: append([]Member(nil), members...),
		Owners:  make(map[resource.Location]string, len(owners)),
		Pins:    map[resource.Location]string{},
	}
	sort.Slice(t.Members, func(i, j int) bool { return t.Members[i].ID < t.Members[j].ID })
	for loc, id := range owners {
		t.Owners[loc] = id
	}
	return t
}

// Clone returns a deep copy with the same epoch.
func (t *Table) Clone() *Table {
	c := &Table{
		Epoch:   t.Epoch,
		Members: append([]Member(nil), t.Members...),
		Owners:  make(map[resource.Location]string, len(t.Owners)),
		Pins:    make(map[resource.Location]string, len(t.Pins)),
	}
	for loc, id := range t.Owners {
		c.Owners[loc] = id
	}
	for loc, id := range t.Pins {
		c.Pins[loc] = id
	}
	return c
}

// Member returns the roster entry for id.
func (t *Table) Member(id string) (Member, bool) {
	for _, m := range t.Members {
		if m.ID == id {
			return m, true
		}
	}
	return Member{}, false
}

// OwnerOf returns the member currently serving loc.
func (t *Table) OwnerOf(loc resource.Location) (string, bool) {
	id, ok := t.Owners[loc]
	return id, ok
}

// Locations returns the sorted locations currently served by id.
func (t *Table) Locations(id string) []resource.Location {
	var locs []resource.Location
	for loc, owner := range t.Owners {
		if owner == id {
			locs = append(locs, loc)
		}
	}
	sort.Slice(locs, func(i, j int) bool { return locs[i] < locs[j] })
	return locs
}

// score is the rendezvous weight of placing loc on member id: FNV-1a
// over the pair, deterministic across nodes and runs. The raw FNV sum
// has weak avalanche in its high bits for short keys — neighboring IDs
// ("n1", "n2") produce correlated sums and one member ends up winning
// nearly every location — so a splitmix64-style finalizer diffuses the
// sum before the rendezvous comparison.
func score(id string, loc resource.Location) uint64 {
	h := fnv.New64a()
	_, _ = h.Write([]byte(id))
	_, _ = h.Write([]byte{0})
	_, _ = h.Write([]byte(loc))
	z := h.Sum64()
	z ^= z >> 30
	z *= 0xbf58476d1ce4e5b9
	z ^= z >> 27
	z *= 0x94d049bb133111eb
	z ^= z >> 31
	return z
}

// rendezvous returns the highest-scoring candidate for loc, breaking
// score ties by smaller ID. exclude removes one candidate (the current
// owner when computing a standby, the departing member when computing
// failover targets); empty string excludes nobody.
func rendezvous(members []Member, loc resource.Location, exclude string) string {
	best := ""
	var bestScore uint64
	for _, m := range members {
		if m.ID == exclude {
			continue
		}
		s := score(m.ID, loc)
		if best == "" || s > bestScore || (s == bestScore && m.ID < best) {
			best, bestScore = m.ID, s
		}
	}
	return best
}

// RendezvousOwner returns the hash's preferred owner for loc among the
// current roster (ignoring pins and the recorded owner).
func (t *Table) RendezvousOwner(loc resource.Location) string {
	return rendezvous(t.Members, loc, "")
}

// StandbyOf returns the member that should hold loc's warm shadow: the
// best-scoring member other than the current owner. Empty when the
// roster has no second member or loc is unowned.
func (t *Table) StandbyOf(loc resource.Location) string {
	owner, ok := t.Owners[loc]
	if !ok {
		return ""
	}
	return rendezvous(t.Members, loc, owner)
}

// JoinMoves plans the ownership transfers caused by m joining: every
// location the joiner explicitly pins, plus every unpinned location
// whose rendezvous winner over the grown roster is the joiner. The
// current table is not modified; commit the moves that actually
// completed with Joined.
func (t *Table) JoinMoves(m Member, pins []resource.Location) []Move {
	grown := append(append([]Member(nil), t.Members...), m)
	pinned := make(map[resource.Location]bool, len(pins))
	for _, loc := range pins {
		pinned[loc] = true
	}
	var moves []Move
	for loc, owner := range t.Owners {
		if owner == m.ID {
			continue
		}
		if pinned[loc] {
			moves = append(moves, Move{Loc: loc, From: owner, To: m.ID})
			continue
		}
		if _, isPinned := t.Pins[loc]; isPinned {
			continue
		}
		if rendezvous(grown, loc, "") == m.ID {
			moves = append(moves, Move{Loc: loc, From: owner, To: m.ID})
		}
	}
	sort.Slice(moves, func(i, j int) bool { return moves[i].Loc < moves[j].Loc })
	return moves
}

// LeaveMoves plans the transfers caused by id departing (gracefully or
// by crash): every location it owns goes to the rendezvous winner among
// the survivors — which is exactly the location's standby, so a crash
// promotes the node that has been receiving its shadows. To is empty
// when no survivor exists.
func (t *Table) LeaveMoves(id string) []Move {
	var moves []Move
	for loc, owner := range t.Owners {
		if owner != id {
			continue
		}
		moves = append(moves, Move{Loc: loc, From: id, To: rendezvous(t.Members, loc, id)})
	}
	sort.Slice(moves, func(i, j int) bool { return moves[i].Loc < moves[j].Loc })
	return moves
}

// Joined derives the next table: m added to the roster, the completed
// moves applied, the listed locations pinned to m, epoch bumped. Moves
// that did not complete are simply omitted by the caller, so the table
// keeps recording where the data actually lives.
func (t *Table) Joined(m Member, moves []Move, pins []resource.Location) *Table {
	next := t.Clone()
	next.Epoch++
	if _, ok := next.Member(m.ID); !ok {
		next.Members = append(next.Members, m)
		sort.Slice(next.Members, func(i, j int) bool { return next.Members[i].ID < next.Members[j].ID })
	} else {
		for i := range next.Members {
			if next.Members[i].ID == m.ID {
				next.Members[i] = m
			}
		}
	}
	for _, mv := range moves {
		next.Owners[mv.Loc] = mv.To
	}
	for _, loc := range pins {
		next.Owners[loc] = m.ID
		next.Pins[loc] = m.ID
	}
	return next
}

// Left derives the next table: id removed from the roster, the
// completed moves applied, its pins dropped, epoch bumped. Locations
// whose move had no target (empty To: the roster emptied) are dropped
// from the ownership map.
func (t *Table) Left(id string, moves []Move) *Table {
	next := t.Clone()
	next.Epoch++
	kept := next.Members[:0]
	for _, m := range next.Members {
		if m.ID != id {
			kept = append(kept, m)
		}
	}
	next.Members = kept
	for _, mv := range moves {
		if mv.To == "" {
			delete(next.Owners, mv.Loc)
			continue
		}
		next.Owners[mv.Loc] = mv.To
	}
	for loc, pinned := range next.Pins {
		if pinned == id {
			delete(next.Pins, loc)
		}
	}
	return next
}

// Validate checks the table's internal consistency: a positive epoch, a
// sorted unique roster with IDs and URLs, and owners/pins that refer to
// roster members (pins must match the recorded owner).
func (t *Table) Validate() error {
	if t.Epoch == 0 {
		return fmt.Errorf("membership: table epoch must be positive")
	}
	if len(t.Members) == 0 {
		return fmt.Errorf("membership: table has no members")
	}
	seen := make(map[string]bool, len(t.Members))
	for i, m := range t.Members {
		if m.ID == "" || len(m.ID) > maxIDLen {
			return fmt.Errorf("membership: member %d has a bad id", i)
		}
		if m.URL == "" || len(m.URL) > maxURLLen {
			return fmt.Errorf("membership: member %s has a bad url", m.ID)
		}
		if seen[m.ID] {
			return fmt.Errorf("membership: duplicate member %s", m.ID)
		}
		seen[m.ID] = true
	}
	for loc, id := range t.Owners {
		if loc == "" || len(loc) > maxIDLen {
			return fmt.Errorf("membership: bad owned location %q", loc)
		}
		if !seen[id] {
			return fmt.Errorf("membership: location %s owned by unknown member %q", loc, id)
		}
	}
	for loc, id := range t.Pins {
		if owner, ok := t.Owners[loc]; !ok || owner != id {
			return fmt.Errorf("membership: pin of %s to %s does not match its owner", loc, id)
		}
	}
	return nil
}
