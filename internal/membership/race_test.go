package membership

import (
	"fmt"
	"sync"
	"testing"

	"repro/internal/resource"
)

// TestRegistryConcurrentReadersDuringChurn is the -race proof for the
// hot path: admission-side readers snapshot the table and resolve
// owners while joins and leaves advance the epoch concurrently. Readers
// must always see an internally consistent table (owners refer to
// roster members) and a monotonic epoch.
func TestRegistryConcurrentReadersDuringChurn(t *testing.T) {
	reg := NewRegistry(seedTable())
	locs := []resource.Location{"l1", "l2", "l3", "l4", "l5", "l6"}

	var wg sync.WaitGroup
	stop := make(chan struct{})
	errs := make(chan error, 16)

	for r := 0; r < 8; r++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			var lastEpoch uint64
			for {
				select {
				case <-stop:
					return
				default:
				}
				tab := reg.Snapshot()
				if tab.Epoch < lastEpoch {
					errs <- fmt.Errorf("epoch went backward: %d after %d", tab.Epoch, lastEpoch)
					return
				}
				lastEpoch = tab.Epoch
				for _, loc := range locs {
					owner, ok := tab.OwnerOf(loc)
					if !ok {
						continue
					}
					if _, member := tab.Member(owner); !member {
						errs <- fmt.Errorf("epoch %d: %s owned by non-member %s", tab.Epoch, loc, owner)
						return
					}
					tab.StandbyOf(loc)
				}
			}
		}()
	}

	// Churn: join n4..n23, leaving the previous joiner each round.
	for i := 4; i < 24; i++ {
		m := Member{ID: fmt.Sprintf("n%d", i), URL: "http://x"}
		cur := reg.Snapshot()
		moves := cur.JoinMoves(m, []resource.Location{locs[i%len(locs)]})
		if !reg.Apply(cur.Joined(m, moves, []resource.Location{locs[i%len(locs)]})) {
			t.Fatal("join apply rejected")
		}
		if i > 4 {
			prev := fmt.Sprintf("n%d", i-1)
			cur = reg.Snapshot()
			if !reg.Apply(cur.Left(prev, cur.LeaveMoves(prev))) {
				t.Fatal("leave apply rejected")
			}
		}
	}
	close(stop)
	wg.Wait()
	select {
	case err := <-errs:
		t.Fatal(err)
	default:
	}
}
