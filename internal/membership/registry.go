package membership

import (
	"sync/atomic"

	"repro/internal/resource"
)

// Registry holds the node's current view of the membership table. Reads
// are lock-free snapshots (the hot admission path consults it on every
// request); writes are epoch-gated compare-and-swaps, so a stale
// broadcast arriving after a newer one is a no-op rather than a
// regression.
type Registry struct {
	table atomic.Pointer[Table]
}

// NewRegistry seeds a registry. The seed table may be nil (a joining
// node before its first table broadcast); Snapshot then returns an
// empty epoch-0 table.
func NewRegistry(seed *Table) *Registry {
	r := &Registry{}
	if seed == nil {
		seed = &Table{
			Owners: map[resource.Location]string{},
			Pins:   map[resource.Location]string{},
		}
	}
	r.table.Store(seed)
	return r
}

// Snapshot returns the current table. Callers must treat it as
// immutable.
func (r *Registry) Snapshot() *Table {
	return r.table.Load()
}

// Apply installs t if and only if its epoch is strictly newer than the
// current table's. Returns whether the table advanced.
func (r *Registry) Apply(t *Table) bool {
	for {
		cur := r.table.Load()
		if t.Epoch <= cur.Epoch {
			return false
		}
		if r.table.CompareAndSwap(cur, t) {
			return true
		}
	}
}

// Epoch returns the current table's epoch.
func (r *Registry) Epoch() uint64 {
	return r.table.Load().Epoch
}
