package membership

import (
	"encoding/json"
	"testing"

	"repro/internal/resource"
)

func seedTable() *Table {
	return NewTable(
		[]Member{{ID: "n1", URL: "http://a"}, {ID: "n2", URL: "http://b"}, {ID: "n3", URL: "http://c"}},
		map[resource.Location]string{
			"l1": "n1", "l2": "n1",
			"l3": "n2", "l4": "n2",
			"l5": "n3", "l6": "n3",
		},
	)
}

func TestSeedTable(t *testing.T) {
	tab := seedTable()
	if tab.Epoch != 1 {
		t.Fatalf("seed epoch = %d, want 1", tab.Epoch)
	}
	if err := tab.Validate(); err != nil {
		t.Fatalf("seed table invalid: %v", err)
	}
	if got := tab.Locations("n2"); len(got) != 2 || got[0] != "l3" || got[1] != "l4" {
		t.Fatalf("Locations(n2) = %v", got)
	}
	if owner, ok := tab.OwnerOf("l5"); !ok || owner != "n3" {
		t.Fatalf("OwnerOf(l5) = %q, %v", owner, ok)
	}
	if _, ok := tab.OwnerOf("nope"); ok {
		t.Fatal("OwnerOf(nope) should miss")
	}
}

func TestRendezvousDeterministicAndStable(t *testing.T) {
	tab := seedTable()
	for _, loc := range []resource.Location{"l1", "l2", "l3", "l4", "l5", "l6"} {
		a := tab.RendezvousOwner(loc)
		b := tab.RendezvousOwner(loc)
		if a != b || a == "" {
			t.Fatalf("rendezvous for %s unstable: %q vs %q", loc, a, b)
		}
		if _, ok := tab.Member(a); !ok {
			t.Fatalf("rendezvous for %s picked non-member %q", loc, a)
		}
	}
}

func TestStandbyIsFailoverTarget(t *testing.T) {
	// The property the failover design rests on: the standby (runner-up)
	// must equal the rendezvous winner among the survivors once the
	// owner departs, so the node that has been receiving shadows is
	// exactly the node promoted by LeaveMoves.
	tab := seedTable()
	for loc, owner := range tab.Owners {
		standby := tab.StandbyOf(loc)
		if standby == "" || standby == owner {
			t.Fatalf("standby of %s = %q (owner %s)", loc, standby, owner)
		}
		moves := tab.LeaveMoves(owner)
		found := false
		for _, mv := range moves {
			if mv.Loc == loc {
				found = true
				if mv.To != standby {
					t.Fatalf("leave(%s) sends %s to %s, but standby was %s", owner, loc, mv.To, standby)
				}
			}
		}
		if !found {
			t.Fatalf("leave(%s) plans no move for %s", owner, loc)
		}
	}
}

func TestJoinMovesRespectPinsAndClaims(t *testing.T) {
	tab := seedTable()
	// Pin l3 to its current owner: no joiner may take it by hash.
	tab.Pins["l3"] = "n2"
	joiner := Member{ID: "n4", URL: "http://d"}
	moves := tab.JoinMoves(joiner, []resource.Location{"l1"})

	byLoc := map[resource.Location]Move{}
	for _, mv := range moves {
		if mv.To != "n4" {
			t.Fatalf("join move %v targets %s, want n4", mv, mv.To)
		}
		byLoc[mv.Loc] = mv
	}
	if mv, ok := byLoc["l1"]; !ok || mv.From != "n1" {
		t.Fatalf("explicit pin of l1 not planned: %v", moves)
	}
	if _, ok := byLoc["l3"]; ok {
		t.Fatalf("pinned l3 must not move: %v", moves)
	}

	next := tab.Joined(joiner, moves, []resource.Location{"l1"})
	if next.Epoch != tab.Epoch+1 {
		t.Fatalf("Joined epoch = %d, want %d", next.Epoch, tab.Epoch+1)
	}
	if err := next.Validate(); err != nil {
		t.Fatalf("joined table invalid: %v", err)
	}
	if owner := next.Owners["l1"]; owner != "n4" {
		t.Fatalf("l1 owner after join = %s", owner)
	}
	if next.Pins["l1"] != "n4" {
		t.Fatal("l1 should be pinned to the joiner")
	}
	// Every moved location is recorded; every unmoved one stayed put.
	for loc, owner := range next.Owners {
		if mv, moved := byLoc[loc]; moved {
			if owner != mv.To {
				t.Fatalf("moved %s recorded as %s", loc, owner)
			}
		} else if owner != tab.Owners[loc] {
			t.Fatalf("unmoved %s changed owner to %s", loc, owner)
		}
	}
	// The original table must be untouched.
	if tab.Owners["l1"] != "n1" || len(tab.Members) != 3 {
		t.Fatal("Joined mutated the source table")
	}
}

func TestLeftDropsMemberAndPins(t *testing.T) {
	tab := seedTable()
	tab.Pins["l5"] = "n3"
	moves := tab.LeaveMoves("n3")
	if len(moves) != 2 {
		t.Fatalf("n3 owns 2 locations, planned %d moves", len(moves))
	}
	next := tab.Left("n3", moves)
	if err := next.Validate(); err != nil {
		t.Fatalf("left table invalid: %v", err)
	}
	if _, ok := next.Member("n3"); ok {
		t.Fatal("n3 still in roster")
	}
	for loc, owner := range next.Owners {
		if owner == "n3" {
			t.Fatalf("%s still owned by departed n3", loc)
		}
	}
	if _, ok := next.Pins["l5"]; ok {
		t.Fatal("pin to departed member survived")
	}
}

func TestLeaveLastMemberOrphansLocations(t *testing.T) {
	tab := NewTable([]Member{{ID: "n1", URL: "http://a"}},
		map[resource.Location]string{"l1": "n1"})
	moves := tab.LeaveMoves("n1")
	if len(moves) != 1 || moves[0].To != "" {
		t.Fatalf("moves = %v, want one orphaning move", moves)
	}
	next := tab.Left("n1", moves)
	if len(next.Owners) != 0 || len(next.Members) != 0 {
		t.Fatalf("emptied cluster still has state: %+v", next)
	}
}

func TestWireRoundTrip(t *testing.T) {
	tab := seedTable()
	tab.Pins["l2"] = "n1"
	body, err := json.Marshal(tab.ToWire())
	if err != nil {
		t.Fatal(err)
	}
	back, err := DecodeTable(body)
	if err != nil {
		t.Fatalf("DecodeTable: %v", err)
	}
	if back.Epoch != tab.Epoch || len(back.Members) != len(tab.Members) {
		t.Fatalf("round trip lost data: %+v", back)
	}
	for loc, id := range tab.Owners {
		if back.Owners[loc] != id {
			t.Fatalf("owner of %s lost in round trip", loc)
		}
	}
	if back.Pins["l2"] != "n1" {
		t.Fatal("pin lost in round trip")
	}
}

func TestDecodeRejectsGarbage(t *testing.T) {
	cases := []struct {
		name string
		dec  func([]byte) error
		body string
	}{
		{"join no id", func(b []byte) error { _, err := DecodeJoinRequest(b); return err }, `{"url":"http://x"}`},
		{"join no url", func(b []byte) error { _, err := DecodeJoinRequest(b); return err }, `{"id":"n9"}`},
		{"join bad json", func(b []byte) error { _, err := DecodeJoinRequest(b); return err }, `{`},
		{"leave no id", func(b []byte) error { _, err := DecodeLeaveRequest(b); return err }, `{"force":true}`},
		{"handoff no locs", func(b []byte) error { _, err := DecodeHandoffRequest(b); return err }, `{"epoch":2,"to":"n2","to_url":"http://b"}`},
		{"handoff no epoch", func(b []byte) error { _, err := DecodeHandoffRequest(b); return err }, `{"locs":["l1"],"to":"n2","to_url":"http://b"}`},
		{"redirect no owner", func(b []byte) error { _, err := DecodeRedirect(b); return err }, `{"epoch":3}`},
		{"table zero epoch", func(b []byte) error { _, err := DecodeTable(b); return err }, `{"epoch":0,"members":[{"id":"a","url":"u"}],"owners":{}}`},
		{"table unknown owner", func(b []byte) error { _, err := DecodeTable(b); return err }, `{"epoch":1,"members":[{"id":"a","url":"u"}],"owners":{"l1":"ghost"}}`},
		{"table pin mismatch", func(b []byte) error { _, err := DecodeTable(b); return err }, `{"epoch":1,"members":[{"id":"a","url":"u"},{"id":"b","url":"u"}],"owners":{"l1":"a"},"pins":{"l1":"b"}}`},
	}
	for _, tc := range cases {
		if err := tc.dec([]byte(tc.body)); err == nil {
			t.Errorf("%s: decoded without error", tc.name)
		}
	}
}

func TestRegistryApplyIsEpochGated(t *testing.T) {
	tab := seedTable()
	reg := NewRegistry(tab)
	if reg.Epoch() != 1 {
		t.Fatalf("epoch = %d", reg.Epoch())
	}
	stale := tab.Clone()
	if reg.Apply(stale) {
		t.Fatal("same-epoch apply must be rejected")
	}
	next := tab.Joined(Member{ID: "n4", URL: "http://d"}, nil, nil)
	if !reg.Apply(next) {
		t.Fatal("newer table rejected")
	}
	if reg.Snapshot().Epoch != 2 {
		t.Fatalf("snapshot epoch = %d", reg.Snapshot().Epoch)
	}
	if reg.Apply(tab) {
		t.Fatal("older table applied after newer")
	}
}

func TestNilRegistrySeed(t *testing.T) {
	reg := NewRegistry(nil)
	if reg.Epoch() != 0 {
		t.Fatalf("nil seed epoch = %d", reg.Epoch())
	}
	tab := seedTable()
	if !reg.Apply(tab) {
		t.Fatal("epoch-1 table rejected over nil seed")
	}
}
