package membership

import (
	"encoding/json"
	"fmt"

	"repro/internal/resource"
)

// Wire limits, matching the cluster API's ID discipline.
const (
	maxIDLen   = 256
	maxURLLen  = 2048
	maxLocs    = 4096
	maxMembers = 4096
)

// JoinRequest asks a steward node to admit a new member. Pins names
// locations the joiner claims outright (they move to it and stay pinned
// there); everything else is rebalanced by rendezvous hashing.
type JoinRequest struct {
	ID   string              `json:"id"`
	URL  string              `json:"url"`
	Pins []resource.Location `json:"pins,omitempty"`
}

// LeaveRequest asks a steward node to remove a member. Force marks the
// member as crashed: its locations are promoted from warm standbys
// instead of handed off by the member itself.
type LeaveRequest struct {
	ID    string `json:"id"`
	Force bool   `json:"force,omitempty"`
}

// HandoffRequest instructs the current owner of Locs to ship them to
// member To (make-before-break: export, install on To, then drop).
// Epoch is the table epoch the completed handoff will publish as.
type HandoffRequest struct {
	Epoch uint64              `json:"epoch"`
	Locs  []resource.Location `json:"locs"`
	To    string              `json:"to"`
	ToURL string              `json:"to_url"`
}

// RedirectResponse is the body of a 421 Misdirected Request: the asked
// node no longer owns the location, and here is who does. Clients and
// peers follow it once and refresh their cached ownership.
type RedirectResponse struct {
	OwnerID  string              `json:"owner_id"`
	OwnerURL string              `json:"owner_url"`
	Epoch    uint64              `json:"epoch"`
	Locs     []resource.Location `json:"locs,omitempty"`
}

// WireTable is the Table's JSON form (string-keyed maps).
type WireTable struct {
	Epoch   uint64            `json:"epoch"`
	Members []Member          `json:"members"`
	Owners  map[string]string `json:"owners"`
	Pins    map[string]string `json:"pins,omitempty"`
}

// ToWire converts a table for broadcast.
func (t *Table) ToWire() WireTable {
	w := WireTable{
		Epoch:   t.Epoch,
		Members: append([]Member(nil), t.Members...),
		Owners:  make(map[string]string, len(t.Owners)),
		Pins:    make(map[string]string, len(t.Pins)),
	}
	for loc, id := range t.Owners {
		w.Owners[string(loc)] = id
	}
	for loc, id := range t.Pins {
		w.Pins[string(loc)] = id
	}
	return w
}

// FromWire converts a received table and validates it.
func FromWire(w WireTable) (*Table, error) {
	if len(w.Members) > maxMembers {
		return nil, fmt.Errorf("membership: table lists %d members (max %d)", len(w.Members), maxMembers)
	}
	if len(w.Owners) > maxLocs {
		return nil, fmt.Errorf("membership: table owns %d locations (max %d)", len(w.Owners), maxLocs)
	}
	t := &Table{
		Epoch:   w.Epoch,
		Members: append([]Member(nil), w.Members...),
		Owners:  make(map[resource.Location]string, len(w.Owners)),
		Pins:    make(map[resource.Location]string, len(w.Pins)),
	}
	for loc, id := range w.Owners {
		t.Owners[resource.Location(loc)] = id
	}
	for loc, id := range w.Pins {
		t.Pins[resource.Location(loc)] = id
	}
	if err := t.Validate(); err != nil {
		return nil, err
	}
	return t, nil
}

func checkID(what, id string) error {
	if id == "" {
		return fmt.Errorf("membership: %s must not be empty", what)
	}
	if len(id) > maxIDLen {
		return fmt.Errorf("membership: %s exceeds %d bytes", what, maxIDLen)
	}
	return nil
}

func checkLocs(locs []resource.Location) error {
	if len(locs) > maxLocs {
		return fmt.Errorf("membership: %d locations (max %d)", len(locs), maxLocs)
	}
	for _, loc := range locs {
		if err := checkID("location", string(loc)); err != nil {
			return err
		}
	}
	return nil
}

// DecodeJoinRequest parses and validates a join body.
func DecodeJoinRequest(body []byte) (JoinRequest, error) {
	var req JoinRequest
	if err := json.Unmarshal(body, &req); err != nil {
		return req, fmt.Errorf("membership: bad join body: %w", err)
	}
	if err := checkID("join id", req.ID); err != nil {
		return req, err
	}
	if req.URL == "" || len(req.URL) > maxURLLen {
		return req, fmt.Errorf("membership: join needs a url no longer than %d bytes", maxURLLen)
	}
	if err := checkLocs(req.Pins); err != nil {
		return req, err
	}
	return req, nil
}

// DecodeLeaveRequest parses and validates a leave body.
func DecodeLeaveRequest(body []byte) (LeaveRequest, error) {
	var req LeaveRequest
	if err := json.Unmarshal(body, &req); err != nil {
		return req, fmt.Errorf("membership: bad leave body: %w", err)
	}
	if err := checkID("leave id", req.ID); err != nil {
		return req, err
	}
	return req, nil
}

// DecodeHandoffRequest parses and validates a handoff body.
func DecodeHandoffRequest(body []byte) (HandoffRequest, error) {
	var req HandoffRequest
	if err := json.Unmarshal(body, &req); err != nil {
		return req, fmt.Errorf("membership: bad handoff body: %w", err)
	}
	if req.Epoch == 0 {
		return req, fmt.Errorf("membership: handoff epoch must be positive")
	}
	if len(req.Locs) == 0 {
		return req, fmt.Errorf("membership: handoff moves no locations")
	}
	if err := checkLocs(req.Locs); err != nil {
		return req, err
	}
	if err := checkID("handoff target", req.To); err != nil {
		return req, err
	}
	if req.ToURL == "" || len(req.ToURL) > maxURLLen {
		return req, fmt.Errorf("membership: handoff needs a target url no longer than %d bytes", maxURLLen)
	}
	return req, nil
}

// DecodeRedirect parses and validates a 421 redirect body.
func DecodeRedirect(body []byte) (RedirectResponse, error) {
	var resp RedirectResponse
	if err := json.Unmarshal(body, &resp); err != nil {
		return resp, fmt.Errorf("membership: bad redirect body: %w", err)
	}
	if err := checkID("redirect owner", resp.OwnerID); err != nil {
		return resp, err
	}
	if resp.OwnerURL == "" || len(resp.OwnerURL) > maxURLLen {
		return resp, fmt.Errorf("membership: redirect needs an owner url no longer than %d bytes", maxURLLen)
	}
	if err := checkLocs(resp.Locs); err != nil {
		return resp, err
	}
	return resp, nil
}

// DecodeTable parses and validates a table broadcast body.
func DecodeTable(body []byte) (*Table, error) {
	var w WireTable
	if err := json.Unmarshal(body, &w); err != nil {
		return nil, fmt.Errorf("membership: bad table body: %w", err)
	}
	return FromWire(w)
}
