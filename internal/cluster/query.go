package cluster

import (
	"context"
	"errors"
	"fmt"
	"net/http"
	"time"

	"repro/internal/interval"
	"repro/internal/obs"
	"repro/internal/obs/span"
	"repro/internal/query"
	"repro/internal/resource"
	"repro/internal/server"
)

// Cluster-aware temporal queries. A query whose footprint lives entirely
// on this node delegates to the embedded server; one spanning locations
// owned by other nodes is answered against the merged free views of the
// owners — the same views a coordinated admission plans against, so a
// fan-out verdict always equals a single merged-ledger evaluation.
// Standing queries (/v1/watch) stay node-local by design: each node
// watches its own ledger epochs, and the mux's "/" fallback already
// routes them to the embedded server.

// handleQuery is the cluster-aware GET /v1/query: commitment lookups
// (?name=) and all-local queries delegate to the embedded server;
// anything touching remote owners fans out.
func (n *Node) handleQuery(w http.ResponseWriter, r *http.Request) {
	if r.URL.Query().Get("name") != "" {
		n.srv.ServeHTTP(w, r)
		return
	}
	q := r.URL.Query().Get("q")
	if q == "" {
		httpError(w, http.StatusBadRequest, errors.New("cluster: query needs ?name= or ?q="))
		return
	}
	c, err := query.ParseText(q)
	if err != nil {
		httpError(w, http.StatusBadRequest, err)
		return
	}
	n.serveQuery(w, r, c)
}

// handleQueryPost is the cluster-aware POST /v1/query.
func (n *Node) handleQueryPost(w http.ResponseWriter, r *http.Request) {
	body, err := readBody(w, r, n.maxBody)
	if err != nil {
		httpError(w, http.StatusBadRequest, err)
		return
	}
	c, err := server.DecodeQueryRequest(body)
	if err != nil {
		httpError(w, http.StatusBadRequest, err)
		return
	}
	n.serveQuery(w, r, c)
}

// serveQuery routes a compiled query: local footprints take the embedded
// server's path (and its metrics), spanning ones are merged here.
func (n *Node) serveQuery(w http.ResponseWriter, r *http.Request, c *query.Compiled) {
	if len(c.Names()) == 0 && n.allSelf(c.Footprint(nil)) {
		resp, err := n.srv.EvalQuery(c)
		if err != nil {
			httpError(w, http.StatusInternalServerError, err)
			return
		}
		writeJSON(w, http.StatusOK, resp)
		return
	}
	_, sp := n.spans.Start(r.Context(), span.KindQuery)
	defer sp.End()
	sp.Attr("query", c.Source())
	resp, err := n.fanoutQuery(r.Context(), c)
	if err != nil {
		sp.SetStatus(span.StatusError)
		sp.Attr("error", err)
		httpError(w, http.StatusServiceUnavailable, err)
		return
	}
	sp.Attr("holds", resp.Holds)
	sp.Attr("epoch", resp.Epoch)
	n.obs.Log("query.fanout",
		"trace", obs.Trace(r.Context()), "query", resp.Query,
		"holds", resp.Holds, "elapsed_us", resp.ElapsedUS)
	writeJSON(w, http.StatusOK, resp)
}

// allSelf reports whether every location is owned by this node under
// the live ownership table (including its handoff overlays).
func (n *Node) allSelf(locs []resource.Location) bool {
	for _, loc := range locs {
		if ref, ok := n.lookupOwner(loc); !ok || ref.id != n.self.ID {
			return false
		}
	}
	return true
}

// clusterEval is the standing-watch evaluator in cluster mode: a watch
// whose footprint stays on this node evaluates against the local ledger
// exactly as before; one touching remote owners evaluates through the
// same fan-out path as a one-shot query. Because ownership is resolved
// per evaluation, a watch keeps answering correctly when its footprint
// locations change owners mid-subscription.
func (n *Node) clusterEval(c *query.Compiled) (query.Verdict, error) {
	if len(c.Names()) == 0 && n.allSelf(c.Footprint(nil)) {
		return n.srv.LocalEval(c)
	}
	ctx, cancel := context.WithTimeout(context.Background(), n.client.timeout)
	defer cancel()
	resp, err := n.fanoutQuery(ctx, c)
	if err != nil {
		return query.Verdict{}, err
	}
	return query.Verdict{Holds: resp.Holds, Epoch: resp.Epoch, Now: resp.Now}, nil
}

// resolveCommitment finds a named commitment anywhere in the cluster:
// locally first, then on each peer via its commitment-lookup endpoint. A
// name committed nowhere resolves to nothing (feasible/Allen atoms over
// it are false), matching single-node semantics.
func (n *Node) resolveCommitment(ctx context.Context, name string) (query.Commitment, bool, error) {
	info, ok := n.srv.Ledger().Commitment(name)
	if !ok {
		for _, ps := range n.peersSnapshot() {
			if ps.isSelf {
				continue
			}
			var pi server.CommitmentInfo
			url := ps.URL + "/v1/query?name=" + name
			if err := n.client.call(ctx, http.MethodGet, url, nil, &pi, nil, ps.rpc); err != nil {
				var se *httpStatusError
				if errors.As(err, &se) && se.status == http.StatusNotFound {
					continue
				}
				return query.Commitment{}, false, fmt.Errorf("cluster: resolving %s on %s: %w", name, ps.ID, err)
			}
			info, ok = pi, true
			break
		}
	}
	if !ok {
		return query.Commitment{}, false, nil
	}
	demand, err := resource.ParseSet(info.Demand)
	if err != nil {
		return query.Commitment{}, false, fmt.Errorf("cluster: commitment %s demand unparsable: %w", name, err)
	}
	locs := make([]resource.Location, len(info.Locations))
	for i, loc := range info.Locations {
		locs[i] = resource.Location(loc)
	}
	return query.Commitment{
		Name:      info.Name,
		Admitted:  info.Admitted,
		Finish:    info.Finish,
		Deadline:  info.Deadline,
		Locations: locs,
		Demand:    demand,
	}, true, nil
}

// fanoutQuery evaluates a query against the merged free views of every
// owner in its footprint — the exact views a coordinated admission plans
// against. Locations no node owns contribute no free resources, so atoms
// over them are false rather than errors, matching an empty shard.
func (n *Node) fanoutQuery(ctx context.Context, c *query.Compiled) (server.QueryResponse, error) {
	start := time.Now()
	n.fanouts.Add(1)
	comms := make(map[string]query.Commitment)
	for _, name := range c.Names() {
		cm, ok, err := n.resolveCommitment(ctx, name)
		if err != nil {
			return server.QueryResponse{}, err
		}
		if ok {
			comms[name] = cm
		}
	}
	footprint := c.Footprint(comms)
	var free resource.Set
	var now interval.Time
	for attempt := 0; ; attempt++ {
		// Resolve owners per attempt: a 421 consumed below refreshes the
		// learned overlay, so the retry routes to the new owner.
		byOwner := make(map[*peerState][]resource.Location)
		for _, loc := range footprint {
			if ref, ok := n.lookupOwner(loc); ok {
				ps := n.peerFor(ref)
				byOwner[ps] = append(byOwner[ps], loc)
			}
		}
		free, now = resource.Set{}, 0
		stale := false
		for ps, locs := range byOwner {
			set, pnow, err := n.freeOn(ctx, ps, locs)
			if err != nil {
				if n.staleOwner(err) {
					stale = true
					break
				}
				return server.QueryResponse{}, err
			}
			free = free.Union(set)
			if pnow > now {
				now = pnow
			}
		}
		if !stale {
			if len(byOwner) == 0 {
				now = n.srv.Ledger().Now()
			}
			break
		}
		if attempt >= maxOwnerRetries {
			return server.QueryResponse{}, errStaleOwner
		}
	}
	snap := query.Snapshot{
		Now:         now,
		Epoch:       n.srv.Ledger().Epoch(),
		Free:        free,
		Commitments: comms,
	}
	res, err := c.Evaluate(snap)
	if err != nil {
		return server.QueryResponse{}, err
	}
	return server.QueryResponse{
		Query:     c.Source(),
		Holds:     res.Holds,
		Formula:   res.Formula,
		Now:       snap.Now,
		Epoch:     snap.Epoch,
		ElapsedUS: time.Since(start).Microseconds(),
	}, nil
}
