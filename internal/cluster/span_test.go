package cluster

import (
	"bytes"
	"context"
	"encoding/json"
	"errors"
	"net/http"
	"net/http/httptest"
	"testing"
	"time"

	"repro/internal/admission"
	"repro/internal/interval"
	"repro/internal/obs"
	"repro/internal/obs/span"
	"repro/internal/resource"
	"repro/internal/server"
	"repro/internal/workload"
)

// admitTraced posts an admission and returns the verdict plus the trace
// ID the instrumented handler stamped on the response.
func admitTraced(t testing.TB, url string, job workload.Job) (server.AdmitResponse, string) {
	t.Helper()
	body, err := json.Marshal(job)
	if err != nil {
		t.Fatal(err)
	}
	resp, err := http.Post(url+"/v1/admit", "application/json", bytes.NewReader(body))
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("admit returned %d", resp.StatusCode)
	}
	var out server.AdmitResponse
	if err := json.NewDecoder(resp.Body).Decode(&out); err != nil {
		t.Fatal(err)
	}
	trace := resp.Header.Get(obs.HeaderTraceID)
	if trace == "" {
		t.Fatal("admit response carries no trace ID")
	}
	return out, trace
}

// mergeSpans collects every node's span records into one slice, the way
// rotatrace merges per-node trace dumps.
func mergeSpans(tc *testCluster) []span.Record {
	var all []span.Record
	for _, st := range tc.spans {
		all = append(all, st.Snapshot()...)
	}
	return all
}

// TestClusterSpanTreeConnected is the cross-node propagation integration
// test: one federated admission through a 3-node cluster must leave a
// SINGLE connected span tree when the three nodes' dumps are merged —
// coordinator spans on the entry node, RPC attempt spans underneath,
// and participant prepare/commit spans parented onto the attempts that
// carried them.
func TestClusterSpanTreeConnected(t *testing.T) {
	tc := newTestCluster(t, 3, 1, 4, 1000, 50)

	// n1 owns neither location, so it coordinates n2 and n3.
	job := spanningJob(t, "span-probe", tc.peers[1].Locations[0], tc.peers[2].Locations[0], 1000)
	verdict, trace := admitTraced(t, tc.urls[0], job)
	if !verdict.Admit {
		t.Fatalf("span probe rejected: %s", verdict.Reason)
	}

	tree := span.BuildTree(trace, mergeSpans(tc))
	if !tree.Connected() {
		var buf bytes.Buffer
		tree.WriteTree(&buf)
		t.Fatalf("federated admission left a disconnected span tree (%d roots, %d orphans):\n%s",
			len(tree.Roots), tree.Orphans, buf.String())
	}
	byKindNode := map[string]map[string]bool{}
	var walk func(n *span.TreeNode)
	walk = func(n *span.TreeNode) {
		if byKindNode[n.Kind] == nil {
			byKindNode[n.Kind] = map[string]bool{}
		}
		byKindNode[n.Kind][n.Node] = true
		for _, c := range n.Children {
			walk(c)
		}
	}
	walk(tree.Roots[0])
	if tree.Roots[0].Kind != span.KindCoordinate || tree.Roots[0].Node != "n1" {
		t.Fatalf("root is %s on %s, want %s on n1", tree.Roots[0].Kind, tree.Roots[0].Node, span.KindCoordinate)
	}
	for _, want := range []struct{ kind, node string }{
		{span.KindPlan, "n1"},
		{span.KindRPC, "n1"},
		{span.KindPrepare, "n2"},
		{span.KindPrepare, "n3"},
		{span.KindCommit, "n2"},
		{span.KindCommit, "n3"},
	} {
		if !byKindNode[want.kind][want.node] {
			var buf bytes.Buffer
			tree.WriteTree(&buf)
			t.Fatalf("tree is missing a %s span on %s:\n%s", want.kind, want.node, buf.String())
		}
	}
	if path := tree.CriticalPath(); len(path) < 3 {
		t.Fatalf("critical path has %d spans, want >= 3", len(path))
	}

	// A federated rejection must surface provenance: advance the cluster
	// clock past a probe's deadline so the coordinator rejects it.
	if status, data := post(t, tc.urls[0]+"/v1/cluster/advance", map[string]any{"now": 600}, nil); status != http.StatusOK {
		t.Fatalf("cluster advance returned %d: %s", status, data)
	}
	late := spanningJob(t, "span-late", tc.peers[1].Locations[0], tc.peers[2].Locations[0], 500)
	verdict, _ = admitTraced(t, tc.urls[0], late)
	if verdict.Admit {
		t.Fatal("late probe admitted past its deadline")
	}
	if verdict.Provenance == nil {
		t.Fatalf("federated rejection %q carries no provenance", verdict.Reason)
	}
	if verdict.Provenance.Stage == "" || verdict.Provenance.Constraint == "" {
		t.Fatalf("rejection provenance incomplete: %+v", verdict.Provenance)
	}
}

// TestMigrateAbortSpanParent is the regression test for the detached
// abort path: when the target peer dies between prepare and commit of a
// migration, the rollback abort runs on a context detached from the
// dying request — but its span must still parent onto the migration
// span. Before span.Detach, only the trace ID survived detachment, so
// every such abort span was an orphan.
func TestMigrateAbortSpanParent(t *testing.T) {
	var freeSet resource.Set
	freeSet.Add(resource.NewTerm(resource.FromUnits(4), resource.CPUAt("l2"), interval.New(0, 1000)))

	// A fake target peer: grants the free view and the prepare, then
	// fails commit the way a freshly killed node would, mid-handover.
	mux := http.NewServeMux()
	mux.HandleFunc("GET /v1/cluster/free", func(w http.ResponseWriter, r *http.Request) {
		writeJSON(w, http.StatusOK, server.FreeResponse{Now: 0, Free: freeSet.Compact()})
	})
	mux.HandleFunc("POST /v1/cluster/prepare", func(w http.ResponseWriter, r *http.Request) {
		writeJSON(w, http.StatusOK, server.PrepareResponse{Held: true})
	})
	mux.HandleFunc("POST /v1/cluster/commit", func(w http.ResponseWriter, r *http.Request) {
		httpError(w, http.StatusInternalServerError, errors.New("simulated node death"))
	})
	mux.HandleFunc("POST /v1/cluster/abort", func(w http.ResponseWriter, r *http.Request) {
		writeJSON(w, http.StatusOK, map[string]string{"aborted": "ok"})
	})
	peer := httptest.NewServer(mux)
	defer peer.Close()

	var theta resource.Set
	theta.Add(resource.NewTerm(resource.FromUnits(4), resource.CPUAt("l1"), interval.New(0, 1000)))
	store := span.NewStore(span.DefaultCapacity, "n1")
	nd, err := New(Config{
		Self: "n1",
		Peers: []Peer{
			{ID: "n1", URL: "http://127.0.0.1:1", Locations: []resource.Location{"l1"}},
			{ID: "n2", URL: peer.URL, Locations: []resource.Location{"l2"}},
		},
		Server:         server.Config{Policy: &admission.Rota{}, Theta: theta},
		GossipInterval: -1,
		RPCRetries:     -1,
		Spans:          store,
	})
	if err != nil {
		t.Fatal(err)
	}
	defer func() {
		ctx, cancel := context.WithTimeout(context.Background(), 5*time.Second)
		defer cancel()
		_ = nd.Shutdown(ctx)
	}()

	job := pinnedJob(t, "mig-span", "l1", 1000)
	body, _ := json.Marshal(job)
	rr := httptest.NewRecorder()
	nd.ServeHTTP(rr, httptest.NewRequest(http.MethodPost, "/v1/admit", bytes.NewReader(body)))
	if rr.Code != http.StatusOK {
		t.Fatalf("admit returned %d: %s", rr.Code, rr.Body.String())
	}

	mig, _ := json.Marshal(MigrateRequest{Name: "mig-span", Target: "n2"})
	rr = httptest.NewRecorder()
	nd.ServeHTTP(rr, httptest.NewRequest(http.MethodPost, "/v1/cluster/migrate", bytes.NewReader(mig)))
	if rr.Code != http.StatusServiceUnavailable {
		t.Fatalf("migrate with dead target returned %d, want 503: %s", rr.Code, rr.Body.String())
	}

	var migrate, abort *span.Record
	recs := store.Snapshot()
	for i := range recs {
		switch recs[i].Kind {
		case span.KindMigrate:
			migrate = &recs[i]
		case span.KindAbort:
			abort = &recs[i]
		}
	}
	if migrate == nil || abort == nil {
		t.Fatalf("span store is missing migrate/abort spans: %+v", recs)
	}
	if abort.Parent != migrate.ID {
		t.Fatalf("detached abort span parents on %q, want the migrate span %q", abort.Parent, migrate.ID)
	}
	if abort.Trace != migrate.Trace {
		t.Fatalf("abort span trace %q != migrate trace %q", abort.Trace, migrate.Trace)
	}
	if abort.Attrs["detached"] != "true" {
		t.Fatalf("abort span is not marked detached: %v", abort.Attrs)
	}
	if migrate.Attrs["outcome"] != "aborted" || migrate.Status != span.StatusError {
		t.Fatalf("migrate span outcome=%q status=%q, want aborted/error", migrate.Attrs["outcome"], migrate.Status)
	}
}
