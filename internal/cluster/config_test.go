package cluster

import (
	"os"
	"path/filepath"
	"reflect"
	"testing"

	"repro/internal/resource"
)

func TestParsePeers(t *testing.T) {
	peers, err := ParsePeers("n1=http://h:8081=l1,l2; n2=http://h:8082/=l3")
	if err != nil {
		t.Fatal(err)
	}
	want := []Peer{
		{ID: "n1", URL: "http://h:8081", Locations: []resource.Location{"l1", "l2"}},
		{ID: "n2", URL: "http://h:8082", Locations: []resource.Location{"l3"}},
	}
	if !reflect.DeepEqual(peers, want) {
		t.Fatalf("peers = %+v, want %+v", peers, want)
	}
}

func TestParsePeersRejectsBadSpecs(t *testing.T) {
	for _, spec := range []string{
		"",                                      // empty table
		"n1=http://h:1",                         // missing locations
		"n1=http://h:1=l1;n1=http://h:2=l2",     // duplicate id
		"n1=http://h:1=l1;n2=http://h:2=l1",     // shared location
		"n1==l1",                                // empty URL
		"=http://h:1=l1",                        // empty id
		"n1=http://h:1=l1;n2=http://h:2=,,",     // no usable locations
		"n1=http://h:1=l1;;;n2=http://h:2=l2=x", // SplitN folds into locations "l2=x"? still 3 parts, ok
	} {
		if spec == "n1=http://h:1=l1;;;n2=http://h:2=l2=x" {
			// This one parses ("l2=x" is a legal if odd location name);
			// it documents that '=' only delimits the first two fields.
			if _, err := ParsePeers(spec); err != nil {
				t.Fatalf("ParsePeers(%q) = %v, want nil", spec, err)
			}
			continue
		}
		if _, err := ParsePeers(spec); err == nil {
			t.Fatalf("ParsePeers(%q) succeeded, want error", spec)
		}
	}
}

func TestLoadPeersFile(t *testing.T) {
	path := filepath.Join(t.TempDir(), "peers.json")
	body := `{"nodes":[
		{"id":"n1","url":"http://h:8081","locations":["l1","l2"]},
		{"id":"n2","url":"http://h:8082","locations":["l3"]}
	]}`
	if err := os.WriteFile(path, []byte(body), 0o644); err != nil {
		t.Fatal(err)
	}
	peers, err := LoadPeersFile(path)
	if err != nil {
		t.Fatal(err)
	}
	if len(peers) != 2 || peers[0].ID != "n1" || len(peers[0].Locations) != 2 {
		t.Fatalf("peers = %+v", peers)
	}
	if _, err := LoadPeersFile(filepath.Join(t.TempDir(), "missing.json")); err == nil {
		t.Fatal("missing file: want error")
	}
	bad := filepath.Join(t.TempDir(), "bad.json")
	if err := os.WriteFile(bad, []byte(`{"nodes":[{"id":"n1","url":"u","locations":[]}]}`), 0o644); err != nil {
		t.Fatal(err)
	}
	if _, err := LoadPeersFile(bad); err == nil {
		t.Fatal("peer without locations: want error")
	}
}

func TestPartitionLocations(t *testing.T) {
	locs := []resource.Location{"l3", "l1", "l2", "l5", "l4"}
	parts := PartitionLocations(locs, 3)
	want := [][]resource.Location{{"l1", "l4"}, {"l2", "l5"}, {"l3"}}
	if !reflect.DeepEqual(parts, want) {
		t.Fatalf("parts = %v, want %v", parts, want)
	}
}

func TestNewRejectsBadMembership(t *testing.T) {
	peers := []Peer{{ID: "n1", URL: "http://h:1", Locations: []resource.Location{"l1"}}}
	if _, err := New(Config{Self: "n2", Peers: peers}); err == nil {
		t.Fatal("self missing from table: want error")
	}
	if _, err := New(Config{Self: "n1"}); err == nil {
		t.Fatal("empty table: want error")
	}
}
