package cluster

import (
	"context"
	"net/http"
	"testing"
	"time"
)

// TestDrainAbortsInflightPrepares pins a coordination between its
// prepare and commit phases with the stage gate, starts a graceful
// shutdown, and then lets the coordination proceed: it must observe the
// drain, abort its prepared holds on every participant (rather than
// leaking them to the lease sweep), and answer 503.
func TestDrainAbortsInflightPrepares(t *testing.T) {
	tc := newTestCluster(t, 2, 1, 4, 1000, 50)

	entered := make(chan string, 1)
	release := make(chan struct{})
	tc.nodes[0].SetGate(func(stage, key string) {
		if stage == "prepared" {
			entered <- key
			<-release
		}
	})

	job := spanningJob(t, "drain-probe", tc.peers[0].Locations[0], tc.peers[1].Locations[0], 1000)
	statusCh := make(chan int, 1)
	go func() {
		status, _ := admitVerdict(t, tc.urls[0], job)
		statusCh <- status
	}()

	// The coordination is now parked after its prepares succeeded.
	select {
	case <-entered:
	case <-time.After(5 * time.Second):
		t.Fatal("coordination never reached the prepared stage")
	}
	if tc.nodes[0].Server().Ledger().NumHolds() != 1 || tc.nodes[1].Server().Ledger().NumHolds() != 1 {
		t.Fatalf("holds before drain: n1=%d n2=%d, want 1 and 1",
			tc.nodes[0].Server().Ledger().NumHolds(), tc.nodes[1].Server().Ledger().NumHolds())
	}

	// Start the graceful shutdown; it must block on the in-flight
	// coordination rather than cutting it off.
	shutdownErr := make(chan error, 1)
	go func() {
		ctx, cancel := context.WithTimeout(context.Background(), 10*time.Second)
		defer cancel()
		shutdownErr <- tc.nodes[0].Shutdown(ctx)
	}()
	waitUntil := time.Now().Add(5 * time.Second)
	for !tc.nodes[0].draining() {
		if time.Now().After(waitUntil) {
			t.Fatal("shutdown never flipped the node to draining")
		}
		time.Sleep(5 * time.Millisecond)
	}

	// Un-park the coordination: it must abort, not commit.
	close(release)
	select {
	case status := <-statusCh:
		if status != http.StatusServiceUnavailable {
			t.Fatalf("drained coordination returned %d, want 503", status)
		}
	case <-time.After(5 * time.Second):
		t.Fatal("coordination never finished")
	}
	if err := <-shutdownErr; err != nil {
		t.Fatalf("shutdown: %v", err)
	}

	// No leaked holds anywhere — the prepares were aborted explicitly,
	// not left to the lease sweep.
	for i, nd := range tc.nodes {
		if holds := nd.Server().Ledger().NumHolds(); holds != 0 {
			t.Fatalf("node %s leaked %d holds through the drain", tc.peers[i].ID, holds)
		}
		if nd.Server().Ledger().NumCommitments() != 0 {
			t.Fatalf("node %s committed a drained admission", tc.peers[i].ID)
		}
	}
	if aborts := tc.nodes[1].Server().Ledger().TwoPhase().Aborts; aborts < 1 {
		t.Fatalf("participant recorded %d aborts, want >= 1", aborts)
	}
	auditAll(t, tc, "after drain")

	// A drained node refuses new admissions outright.
	status, _ := post(t, tc.urls[0]+"/v1/admit", job, nil)
	if status != http.StatusServiceUnavailable {
		t.Fatalf("admit on drained node returned %d, want 503", status)
	}
}
