// Package cluster federates rotad daemons into a multi-node admission
// system: each node owns a disjoint set of locations, gossips ledger
// summaries to its peers, routes single-owner jobs to their owner, and
// admits jobs spanning several owners with a two-phase leased
// reservation protocol (prepare / commit / abort) that preserves each
// node's Theorem-4 no-overcommitment invariant even when a coordinator
// crashes mid-admission. It also implements the paper's migrate rule at
// system scale: a committed job's remaining plan can be re-homed to
// another node through the same prepare/commit path.
package cluster

import (
	"encoding/json"
	"fmt"
	"os"
	"sort"
	"strings"

	"repro/internal/resource"
)

// Peer is one cluster member: its identity, its base URL, and the
// locations it owns. Ownership is static and disjoint across peers.
type Peer struct {
	ID        string              `json:"id"`
	URL       string              `json:"url"`
	Locations []resource.Location `json:"locations"`
}

// ParsePeers parses the flag syntax for a static peer table:
//
//	n1=http://host:8081=l1,l2;n2=http://host:8082=l3,l4
//
// Entries are ';'-separated; each is id=url=comma-separated-locations.
func ParsePeers(spec string) ([]Peer, error) {
	var peers []Peer
	for _, entry := range strings.Split(spec, ";") {
		entry = strings.TrimSpace(entry)
		if entry == "" {
			continue
		}
		parts := strings.SplitN(entry, "=", 3)
		if len(parts) != 3 {
			return nil, fmt.Errorf("cluster: bad peer entry %q (want id=url=l1,l2)", entry)
		}
		p := Peer{ID: strings.TrimSpace(parts[0]), URL: strings.TrimSuffix(strings.TrimSpace(parts[1]), "/")}
		for _, loc := range strings.Split(parts[2], ",") {
			loc = strings.TrimSpace(loc)
			if loc != "" {
				p.Locations = append(p.Locations, resource.Location(loc))
			}
		}
		peers = append(peers, p)
	}
	if err := ValidatePeers(peers); err != nil {
		return nil, err
	}
	return peers, nil
}

// peersFile is the JSON config-file shape: {"nodes":[{id,url,locations}]}.
type peersFile struct {
	Nodes []Peer `json:"nodes"`
}

// LoadPeersFile reads a peer table from a JSON config file.
func LoadPeersFile(path string) ([]Peer, error) {
	data, err := os.ReadFile(path)
	if err != nil {
		return nil, fmt.Errorf("cluster: %w", err)
	}
	var f peersFile
	if err := json.Unmarshal(data, &f); err != nil {
		return nil, fmt.Errorf("cluster: bad config %s: %w", path, err)
	}
	if err := ValidatePeers(f.Nodes); err != nil {
		return nil, fmt.Errorf("cluster: config %s: %w", path, err)
	}
	return f.Nodes, nil
}

// ValidatePeers checks a peer table: at least one peer, unique non-empty
// IDs and URLs, at least one location each, and disjoint ownership.
func ValidatePeers(peers []Peer) error {
	if len(peers) == 0 {
		return fmt.Errorf("cluster: empty peer table")
	}
	ids := make(map[string]bool, len(peers))
	owners := make(map[resource.Location]string)
	for _, p := range peers {
		if p.ID == "" {
			return fmt.Errorf("cluster: peer with empty id")
		}
		if ids[p.ID] {
			return fmt.Errorf("cluster: duplicate peer id %s", p.ID)
		}
		ids[p.ID] = true
		if p.URL == "" {
			return fmt.Errorf("cluster: peer %s has no URL", p.ID)
		}
		if len(p.Locations) == 0 {
			return fmt.Errorf("cluster: peer %s owns no locations", p.ID)
		}
		for _, loc := range p.Locations {
			if other, taken := owners[loc]; taken {
				return fmt.Errorf("cluster: location %s owned by both %s and %s", loc, other, p.ID)
			}
			owners[loc] = p.ID
		}
	}
	return nil
}

// PartitionLocations assigns locations l1..lM round-robin across n node
// slots — the default static assignment used by the cluster selftest.
func PartitionLocations(locs []resource.Location, n int) [][]resource.Location {
	parts := make([][]resource.Location, n)
	sorted := append([]resource.Location(nil), locs...)
	sort.Slice(sorted, func(i, j int) bool { return sorted[i] < sorted[j] })
	for i, loc := range sorted {
		parts[i%n] = append(parts[i%n], loc)
	}
	return parts
}
