package cluster

import (
	"bufio"
	"bytes"
	"context"
	"encoding/json"
	"fmt"
	"net"
	"net/http"
	neturl "net/url"
	"strings"
	"sync"
	"testing"
	"time"

	"repro/internal/admission"
	"repro/internal/interval"
	"repro/internal/obs"
	"repro/internal/obs/assure"
	"repro/internal/obs/span"
	"repro/internal/query"
	"repro/internal/resource"
	"repro/internal/server"
	"repro/internal/workload"
)

// newJoiner boots a Join-mode node (owns nothing, serves on a real
// listener) ready to JoinCluster through a steward.
func newJoiner(t *testing.T, id string) (*Node, string) {
	t.Helper()
	ln, err := net.Listen("tcp", "127.0.0.1:0")
	if err != nil {
		t.Fatal(err)
	}
	url := "http://" + ln.Addr().String()
	nd, err := New(Config{
		Self:           id,
		Peers:          []Peer{{ID: id, URL: url}},
		Join:           true,
		Server:         server.Config{Policy: &admission.Rota{}, Assure: assure.New(id)},
		LeaseTTL:       50,
		GossipInterval: 50 * time.Millisecond,
		Obs:            obs.New(obs.Options{Log: &bytes.Buffer{}, Node: id}),
		Spans:          span.NewStore(span.DefaultCapacity, id),
	})
	if err != nil {
		t.Fatal(err)
	}
	hs := &http.Server{Handler: nd}
	go func() { _ = hs.Serve(ln) }()
	t.Cleanup(func() {
		ctx, cancel := context.WithTimeout(context.Background(), 10*time.Second)
		defer cancel()
		_ = nd.Shutdown(ctx)
		_ = hs.Shutdown(ctx)
	})
	return nd, url
}

// commitmentHome counts how many cluster ledgers hold a commitment.
func commitmentHome(nodes []*Node, name string) int {
	homes := 0
	for _, nd := range nodes {
		if _, ok := nd.Server().Ledger().Commitment(name); ok {
			homes++
		}
	}
	return homes
}

// TestJoinMovesOwnershipWithoutLosingReservations: a new member joins a
// loaded 2-node cluster with explicit pins spanning both incumbents.
// Every committed reservation on the pinned locations must survive the
// handoffs, the epoch must advance everywhere, and admissions for the
// moved locations must land on the joiner afterwards.
func TestJoinMovesOwnershipWithoutLosingReservations(t *testing.T) {
	tc := newTestCluster(t, 2, 2, 8, 100000, 50)
	// n1 owns l1,l2; n2 owns l3,l4. Commit one job per location.
	jobs := map[string]resource.Location{}
	for i, loc := range []resource.Location{"l1", "l2", "l3", "l4"} {
		name := fmt.Sprintf("pre-join-%d", i)
		status, verdict := admitVerdict(t, tc.urls[i/2], pinnedJob(t, name, loc, 100000))
		if status != http.StatusOK || !verdict.Admit {
			t.Fatalf("seeding %s on %s: status %d, verdict %+v", name, loc, status, verdict)
		}
		jobs[name] = loc
	}

	joiner, _ := newJoiner(t, "n3")
	ctx, cancel := context.WithTimeout(context.Background(), 10*time.Second)
	defer cancel()
	// Pins span both incumbents: l2 is handed off by the steward itself,
	// l3 by a steward-ordered RPC handoff on n2.
	if err := joiner.JoinCluster(ctx, tc.urls[0], []resource.Location{"l2", "l3"}); err != nil {
		t.Fatalf("join: %v", err)
	}

	all := append(append([]*Node{}, tc.nodes...), joiner)
	for _, nd := range all {
		tbl := nd.Table()
		if tbl.Epoch < 2 {
			t.Fatalf("%s still routes by epoch %d", nd.ID(), tbl.Epoch)
		}
		for _, loc := range []resource.Location{"l2", "l3"} {
			if owner, ok := tbl.OwnerOf(loc); !ok || owner != "n3" {
				t.Fatalf("%s's table says %s owns %s, want n3", nd.ID(), owner, loc)
			}
		}
	}
	// Zero lost committed reservations: every pre-join job lives on
	// exactly one node, and the pinned ones moved to the joiner.
	for name, loc := range jobs {
		if homes := commitmentHome(all, name); homes != 1 {
			t.Fatalf("%s (on %s) lives on %d nodes after the join, want exactly 1", name, loc, homes)
		}
	}
	for _, name := range []string{"pre-join-1", "pre-join-2"} { // l2, l3
		if _, ok := joiner.Server().Ledger().Commitment(name); !ok {
			t.Fatalf("%s did not move to the joiner with its location", name)
		}
	}
	for i, nd := range all {
		if err := nd.Server().Ledger().Audit(); err != nil {
			t.Fatalf("node %d audit after join: %v", i, err)
		}
	}

	// New load on a moved location routes to the joiner — submitted via an
	// incumbent, which forwards (following any redirect) to n3.
	status, verdict := admitVerdict(t, tc.urls[1], pinnedJob(t, "post-join", "l2", 100000))
	if status != http.StatusOK || !verdict.Admit {
		t.Fatalf("post-join admit: status %d, verdict %+v", status, verdict)
	}
	if _, ok := joiner.Server().Ledger().Commitment("post-join"); !ok {
		t.Fatal("post-join commitment did not land on the new owner")
	}
	// Cluster-wide release reaches the joiner too.
	if status, _ := post(t, tc.urls[0]+"/v1/release", map[string]string{"name": "pre-join-1"}, nil); status != http.StatusOK {
		t.Fatalf("releasing a moved commitment returned %d", status)
	}
	if _, ok := joiner.Server().Ledger().Commitment("pre-join-1"); ok {
		t.Fatal("release did not reach the moved commitment")
	}
}

// TestConcurrentAdmissionsDuringHandoff hammers every location with
// admissions while a join rebalances ownership mid-flight. Run under
// -race this doubles as the ownership-table/handoff data-race test.
// Every request must end in a clean verdict (transient redirects are
// retried internally), and every admitted job must live on exactly one
// ledger afterwards — nothing lost, nothing duplicated.
func TestConcurrentAdmissionsDuringHandoff(t *testing.T) {
	tc := newTestCluster(t, 2, 2, 64, 100000, 50)
	locs := []resource.Location{"l1", "l2", "l3", "l4"}

	var admitted sync.Map
	var wg sync.WaitGroup
	const clients, perClient = 4, 25
	start := make(chan struct{})
	for c := 0; c < clients; c++ {
		wg.Add(1)
		go func(c int) {
			defer wg.Done()
			<-start
			for i := 0; i < perClient; i++ {
				name := fmt.Sprintf("churn-%d-%d", c, i)
				job := pinnedJob(t, name, locs[(c+i)%len(locs)], 100000)
				status, verdict := admitVerdict(t, tc.urls[(c+i)%len(tc.urls)], job)
				if status != http.StatusOK {
					t.Errorf("admit %s returned %d mid-handoff", name, status)
					return
				}
				if verdict.Admit {
					admitted.Store(name, true)
				}
			}
		}(c)
	}

	joiner, _ := newJoiner(t, "n3")
	close(start)
	ctx, cancel := context.WithTimeout(context.Background(), 15*time.Second)
	defer cancel()
	if err := joiner.JoinCluster(ctx, tc.urls[0], []resource.Location{"l1", "l3"}); err != nil {
		t.Fatalf("join under load: %v", err)
	}
	wg.Wait()
	if t.Failed() {
		return
	}

	all := append(append([]*Node{}, tc.nodes...), joiner)
	count := 0
	admitted.Range(func(k, _ any) bool {
		count++
		if homes := commitmentHome(all, k.(string)); homes != 1 {
			t.Errorf("%s lives on %d ledgers, want exactly 1", k, homes)
		}
		return true
	})
	if count == 0 {
		t.Fatal("nothing admitted during the handoff window")
	}
	for _, nd := range all {
		if err := nd.Server().Ledger().Audit(); err != nil {
			t.Fatalf("%s audit after join under load: %v", nd.ID(), err)
		}
	}
	if joiner.Table().Epoch < 2 {
		t.Fatalf("join did not advance the epoch: %d", joiner.Table().Epoch)
	}
}

// TestForceLeavePromotesStandby kills a primary and force-leaves it:
// the rendezvous standby must promote from its gossip-fed shadow with
// the committed reservation intact, and the cluster must keep admitting
// on the moved location.
func TestForceLeavePromotesStandby(t *testing.T) {
	tc := newTestCluster(t, 3, 1, 8, 100000, 50)
	// Pick n2 (owns l2) as the victim; its standby is the rendezvous
	// runner-up, exactly where LeaveMoves will send l2.
	victim := 1
	loc := tc.peers[victim].Locations[0]
	standbyID := tc.nodes[0].Table().StandbyOf(loc)
	if standbyID == "" || standbyID == tc.peers[victim].ID {
		t.Fatalf("no usable standby for %s: %q", loc, standbyID)
	}
	var standby *Node
	var survivor string
	for i, p := range tc.peers {
		if p.ID == standbyID {
			standby = tc.nodes[i]
		} else if i != victim {
			survivor = tc.urls[i]
		}
	}

	status, verdict := admitVerdict(t, tc.urls[victim], pinnedJob(t, "survives-crash", loc, 100000))
	if status != http.StatusOK || !verdict.Admit {
		t.Fatalf("seeding the victim: status %d, verdict %+v", status, verdict)
	}
	// Wait for the victim's gossip tick to ship the shadow.
	deadline := time.Now().Add(5 * time.Second)
	for {
		standby.smu.Lock()
		_, ok := standby.shadows[loc]
		standby.smu.Unlock()
		if ok {
			break
		}
		if time.Now().After(deadline) {
			t.Fatalf("no shadow of %s reached standby %s within 5s", loc, standbyID)
		}
		time.Sleep(20 * time.Millisecond)
	}

	// Crash the primary: its listener dies, no graceful handoff possible.
	_ = tc.httpSrvs[victim].Close()
	body, _ := json.Marshal(map[string]any{"id": tc.peers[victim].ID, "force": true})
	resp, err := http.Post(survivor+"/v1/cluster/leave", "application/json", bytes.NewReader(body))
	if err != nil {
		t.Fatal(err)
	}
	resp.Body.Close()
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("force leave returned %d", resp.StatusCode)
	}

	if _, ok := standby.Server().Ledger().Commitment("survives-crash"); !ok {
		t.Fatal("committed reservation lost in the failover")
	}
	if owner, ok := standby.Table().OwnerOf(loc); !ok || owner != standbyID {
		t.Fatalf("%s owned by %s after failover, want %s", loc, owner, standbyID)
	}
	if _, ok := standby.Table().Member(tc.peers[victim].ID); ok {
		t.Fatal("dead member still in the table")
	}
	if err := standby.Server().Ledger().Audit(); err != nil {
		t.Fatalf("standby audit after promotion: %v", err)
	}
	if got := standby.Stats().Cluster.Promotions; got != 1 {
		t.Fatalf("standby promotions = %d, want 1", got)
	}

	// The cluster keeps admitting on the failed-over location.
	status, verdict = admitVerdict(t, survivor, pinnedJob(t, "post-failover", loc, 100000))
	if status != http.StatusOK || !verdict.Admit {
		t.Fatalf("post-failover admit: status %d, verdict %+v", status, verdict)
	}
	if _, ok := standby.Server().Ledger().Commitment("post-failover"); !ok {
		t.Fatal("post-failover commitment missed the promoted standby")
	}
}

// sseWatch is a minimal /v1/watch client for membership tests.
type sseWatch struct {
	resp   *http.Response
	events chan query.Event
}

func openSSEWatch(t *testing.T, baseURL, q string) *sseWatch {
	t.Helper()
	req, err := http.NewRequest(http.MethodGet, baseURL+"/v1/watch?q="+neturl.QueryEscape(q), nil)
	if err != nil {
		t.Fatal(err)
	}
	resp, err := http.DefaultTransport.RoundTrip(req)
	if err != nil {
		t.Fatal(err)
	}
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("watch returned %d", resp.StatusCode)
	}
	w := &sseWatch{resp: resp, events: make(chan query.Event, 16)}
	t.Cleanup(func() { resp.Body.Close() })
	go func() {
		defer close(w.events)
		sc := bufio.NewScanner(resp.Body)
		sc.Buffer(make([]byte, 0, 64*1024), 1<<20)
		for sc.Scan() {
			line := sc.Text()
			if !strings.HasPrefix(line, "data: ") {
				continue
			}
			var ev query.Event
			if json.Unmarshal([]byte(strings.TrimPrefix(line, "data: ")), &ev) == nil {
				w.events <- ev
			}
		}
	}()
	return w
}

func (w *sseWatch) next(t *testing.T, timeout time.Duration) query.Event {
	t.Helper()
	select {
	case ev, ok := <-w.events:
		if !ok {
			t.Fatal("watch stream closed")
		}
		return ev
	case <-time.After(timeout):
		t.Fatal("no watch event in time")
	}
	return query.Event{}
}

// TestWatchStaysCorrectAcrossOwnershipMove is the regression test for
// the static-ownership bug in the query fan-out: a standing watch whose
// footprint location changes owners mid-subscription must keep
// delivering correct verdicts, resolved through the live table.
func TestWatchStaysCorrectAcrossOwnershipMove(t *testing.T) {
	tc := newTestCluster(t, 2, 1, 8, 100000, 50)
	// Watch l2 (owned by n2) from n1: remote footprint, fan-out evaluator.
	// Window (now, now+1): exactly the tick the one-shot filler below
	// reserves, so its admission flips the verdict and its release flips
	// it back. (A wider window would stay satisfiable around the filler.)
	q := fmt.Sprintf("holds(%s, cpu>=8, next 1)", tc.peers[1].Locations[0])
	w := openSSEWatch(t, tc.urls[0], q)
	if ev := w.next(t, 5*time.Second); !ev.Holds {
		t.Fatalf("initial verdict holds=false, want true (l2 is free): %+v", ev)
	}

	// Move l2 to a fresh joiner. The watch's footprint now lives on a
	// node that did not exist when it subscribed.
	joiner, _ := newJoiner(t, "n3")
	ctx, cancel := context.WithTimeout(context.Background(), 10*time.Second)
	defer cancel()
	loc := tc.peers[1].Locations[0]
	if err := joiner.JoinCluster(ctx, tc.urls[0], []resource.Location{loc}); err != nil {
		t.Fatalf("join: %v", err)
	}
	if owner, _ := tc.nodes[0].Table().OwnerOf(loc); owner != "n3" {
		t.Fatalf("%s owned by %s, want n3", loc, owner)
	}

	// Fill the moved location via the OLD owner's URL — the admission is
	// redirected to the joiner, whose ledger change must flip the watch
	// on n1 (delivered by the gossip-driven re-evaluation).
	status, verdict := admitVerdict(t, tc.urls[1], pinnedJob(t, "filler", loc, 100000))
	if status != http.StatusOK || !verdict.Admit {
		t.Fatalf("filler admit: status %d, verdict %+v", status, verdict)
	}
	if _, ok := joiner.Server().Ledger().Commitment("filler"); !ok {
		t.Fatal("filler did not land on the new owner")
	}
	flipped := false
	deadline := time.Now().Add(10 * time.Second)
	for !flipped && time.Now().Before(deadline) {
		ev := w.next(t, 10*time.Second)
		if !ev.Holds {
			flipped = true
		}
	}
	if !flipped {
		t.Fatal("watch never saw the post-move admission")
	}
	// One-shot fan-out from n1 agrees, resolved through the live table.
	resp, err := http.Get(tc.urls[0] + "/v1/query?q=" + neturl.QueryEscape(q))
	if err != nil {
		t.Fatal(err)
	}
	var qr server.QueryResponse
	err = json.NewDecoder(resp.Body).Decode(&qr)
	resp.Body.Close()
	if err != nil || qr.Holds {
		t.Fatalf("one-shot verdict after move: holds=%v err=%v, want false", qr.Holds, err)
	}

	// Releasing the filler flips the watch back.
	if status, _ := post(t, tc.urls[0]+"/v1/release", map[string]string{"name": "filler"}, nil); status != http.StatusOK {
		t.Fatalf("release returned %d", status)
	}
	for {
		ev := w.next(t, 10*time.Second)
		if ev.Holds {
			break
		}
	}
}

// TestGracefulLeaveHandsOffEverything: a member leaves politely; its
// locations and live commitments must move to the rendezvous successors
// before the table drops it.
func TestGracefulLeaveHandsOffEverything(t *testing.T) {
	tc := newTestCluster(t, 3, 1, 8, 100000, 50)
	loc := tc.peers[2].Locations[0]
	status, verdict := admitVerdict(t, tc.urls[2], pinnedJob(t, "moves-out", loc, 100000))
	if status != http.StatusOK || !verdict.Admit {
		t.Fatalf("seed: status %d, verdict %+v", status, verdict)
	}

	status, data := post(t, tc.urls[0]+"/v1/cluster/leave", map[string]any{"id": "n3"}, nil)
	if status != http.StatusOK {
		t.Fatalf("graceful leave returned %d: %s", status, data)
	}
	tbl := tc.nodes[0].Table()
	if _, ok := tbl.Member("n3"); ok {
		t.Fatal("left member still in the table")
	}
	newOwner, ok := tbl.OwnerOf(loc)
	if !ok || newOwner == "n3" {
		t.Fatalf("%s owned by %q after leave", loc, newOwner)
	}
	if homes := commitmentHome(tc.nodes[:2], "moves-out"); homes != 1 {
		t.Fatalf("moves-out lives on %d surviving ledgers, want 1", homes)
	}
	// The departed node's ledger no longer owns the location.
	if tc.nodes[2].Server().Ledger().NumCommitments() != 0 {
		t.Fatal("departed node still holds the commitment")
	}
	for _, nd := range tc.nodes[:2] {
		if err := nd.Server().Ledger().Audit(); err != nil {
			t.Fatalf("%s audit after leave: %v", nd.ID(), err)
		}
	}
	// Last-member and unknown-member guard rails.
	if status, _ := post(t, tc.urls[0]+"/v1/cluster/leave", map[string]any{"id": "ghost"}, nil); status != http.StatusNotFound {
		t.Fatalf("unknown member leave: %d, want 404", status)
	}
}

// TestRedirectServedForHandedOffLocation exercises the 421 contract
// directly: after a handoff, the old owner answers the cluster-protocol
// endpoints with a redirect naming the new owner, until the new table
// supersedes the overlay.
func TestRedirectServedForHandedOffLocation(t *testing.T) {
	tc := newTestCluster(t, 2, 1, 8, 100000, 50)
	n1 := tc.nodes[0]
	loc := tc.peers[0].Locations[0]
	// Execute a raw handoff (no table update): n1 → n2 at a future epoch.
	ctx, cancel := context.WithTimeout(context.Background(), 5*time.Second)
	defer cancel()
	if err := n1.executeHandoff(ctx, []resource.Location{loc}, "n2", tc.urls[1], n1.Table().Epoch+1); err != nil {
		t.Fatalf("handoff: %v", err)
	}
	resp, err := http.Get(tc.urls[0] + "/v1/cluster/free?locs=" + string(loc))
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	if resp.StatusCode != http.StatusMisdirectedRequest {
		t.Fatalf("free on handed-off location returned %d, want 421", resp.StatusCode)
	}
	var red struct {
		OwnerID  string `json:"owner_id"`
		OwnerURL string `json:"owner_url"`
	}
	if err := json.NewDecoder(resp.Body).Decode(&red); err != nil {
		t.Fatal(err)
	}
	if red.OwnerID != "n2" || red.OwnerURL != tc.urls[1] {
		t.Fatalf("redirect points at %s (%s), want n2 (%s)", red.OwnerID, red.OwnerURL, tc.urls[1])
	}
	if got := n1.Stats().Cluster.RedirectsServed; got == 0 {
		t.Fatal("redirects_served did not count")
	}
	// An admit submitted to the old owner still succeeds: the forward
	// path follows the redirect to the new owner.
	status, verdict := admitVerdict(t, tc.urls[0], pinnedJob(t, "after-redirect", loc, 100000))
	if status != http.StatusOK || !verdict.Admit {
		t.Fatalf("admit after handoff: status %d, verdict %+v", status, verdict)
	}
	if _, ok := tc.nodes[1].Server().Ledger().Commitment("after-redirect"); !ok {
		t.Fatal("redirected admission missed the new owner")
	}
}

var _ = workload.Job{}
var _ interval.Time
