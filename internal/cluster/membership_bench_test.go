package cluster

import (
	"bytes"
	"context"
	"encoding/json"
	"fmt"
	"net/http"
	"sync"
	"testing"
	"time"

	"repro/internal/resource"
)

// BenchmarkHandoffUnderLoad measures one full make-before-break
// ownership handoff over the wire — export on the source, leased
// install on the target, drop on the source, table publish — while a
// background client keeps admitting and releasing against the
// non-moving shard. This is the number EXPERIMENTS.md E15 tracks and
// the benchjson -compare gate watches: the cost of moving a location
// with N live commitments without pausing the cluster.
func BenchmarkHandoffUnderLoad(b *testing.B) {
	for _, commitments := range []int{10, 100} {
		b.Run(fmt.Sprintf("commitments=%d", commitments), func(b *testing.B) {
			tc := newTestCluster(b, 2, 1, 8, 100000, 1000)
			moving := tc.peers[0].Locations[0]
			steady := tc.peers[1].Locations[0]
			for i := 0; i < commitments; i++ {
				name := fmt.Sprintf("held-%d", i)
				status, v := admitVerdict(b, tc.urls[0], pinnedJob(b, name, moving, 100000))
				if status != http.StatusOK || !v.Admit {
					b.Fatalf("seed %s: status %d, verdict %+v", name, status, v)
				}
			}

			// Live traffic on the shard that is not moving, for the whole
			// timed region. Errors are ignored on purpose: the loop exists
			// to keep the admission path busy, not to assert on it.
			loadBody, err := json.Marshal(pinnedJob(b, "bg-load", steady, 100000))
			if err != nil {
				b.Fatal(err)
			}
			releaseBody, _ := json.Marshal(map[string]string{"name": "bg-load"})
			stop := make(chan struct{})
			var wg sync.WaitGroup
			wg.Add(1)
			go func() {
				defer wg.Done()
				for {
					select {
					case <-stop:
						return
					default:
					}
					for _, ep := range []string{"/v1/admit", "/v1/release"} {
						body := loadBody
						if ep == "/v1/release" {
							body = releaseBody
						}
						resp, err := http.Post(tc.urls[1]+ep, "application/json", bytes.NewReader(body))
						if err == nil {
							resp.Body.Close()
						}
					}
				}
			}()

			src, dst := 0, 1
			b.ResetTimer()
			for i := 0; i < b.N; i++ {
				ctx, cancel := context.WithTimeout(context.Background(), 30*time.Second)
				epoch := tc.nodes[src].Table().Epoch + 1
				err := tc.nodes[src].executeHandoff(ctx,
					[]resource.Location{moving}, tc.peers[dst].ID, tc.urls[dst], epoch)
				cancel()
				if err != nil {
					b.Fatalf("handoff %d (%s -> %s): %v", i, tc.peers[src].ID, tc.peers[dst].ID, err)
				}
				next := tc.nodes[src].Table().Clone()
				next.Epoch = epoch
				next.Owners[moving] = tc.peers[dst].ID
				for _, nd := range tc.nodes {
					nd.applyTable(next)
				}
				src, dst = dst, src
			}
			b.StopTimer()
			close(stop)
			wg.Wait()

			// However many times ownership ping-ponged, every seeded
			// commitment must live on exactly the final owner's ledger.
			for i := 0; i < commitments; i++ {
				if home := commitmentHome(tc.nodes, fmt.Sprintf("held-%d", i)); home != 1 {
					b.Fatalf("held-%d lives on %d ledgers after %d handoffs, want 1", i, home, b.N)
				}
			}
			auditAll(b, tc, "after handoffs")
		})
	}
}
