package cluster

import (
	"time"

	"repro/internal/obs"
)

// Prometheus exposition for the federation layer. Every exported field
// of ClusterCounters has a counterpart family here (the latency trio is
// covered by the coordination-latency summary); the obs metrics-lint
// test enforces the mapping just as it does for the server layer.

// CollectMetrics implements obs.Collector: the embedded server's
// families first, then the federation layer's. One scrape of a cluster
// node therefore covers both layers; shared HTTP families are
// disambiguated by the layer label.
func (n *Node) CollectMetrics(e *obs.Exposition) {
	n.srv.CollectMetrics(e)

	peers := n.peersSnapshot()
	e.Gauge("rota_cluster_peers", "Live cluster membership size, including self.", nil, float64(len(peers)))
	e.Gauge("rota_cluster_membership_epoch", "Ownership-table epoch this node currently routes by.", nil, float64(n.reg.Epoch()))

	e.Counter("rota_cluster_forwarded_total", "Single-owner admissions relayed to the owning peer.", nil, float64(n.forwarded.Load()))
	e.Counter("rota_cluster_misrouted_total", "Forwarded admissions refused because this node does not own the footprint.", nil, float64(n.misrouted.Load()))
	e.Counter("rota_cluster_coordinations_total", "Two-phase federated admissions coordinated by this node.", nil, float64(n.coordinations.Load()))
	e.Counter("rota_cluster_coord_admitted_total", "Federated admissions that committed on every owner.", nil, float64(n.coordAdmitted.Load()))
	e.Counter("rota_cluster_coord_rejected_total", "Federated admissions rejected on capacity.", nil, float64(n.coordRejected.Load()))
	e.Counter("rota_cluster_coord_failed_total", "Federated admissions that failed on protocol or transport errors.", nil, float64(n.coordFailed.Load()))
	e.Counter("rota_cluster_injected_crashes_total", "Simulated coordinator crashes (test instrumentation).", nil, float64(n.crashes.Load()))
	e.Counter("rota_cluster_migrations_total", "Commitments re-homed onto another node (make-before-break).", nil, float64(n.migrations.Load()))
	e.Counter("rota_cluster_releases_total", "Cluster-wide releases fanned out from this node.", nil, float64(n.releases.Load()))
	e.Counter("rota_cluster_fanout_queries_total", "Temporal queries answered against merged remote free views.", nil, float64(n.fanouts.Load()))

	e.Counter("rota_cluster_joins_total", "Membership joins stewarded by this node.", nil, float64(n.joins.Load()))
	e.Counter("rota_cluster_leaves_total", "Membership leaves stewarded by this node.", nil, float64(n.leaves.Load()))
	e.Counter("rota_cluster_handoffs_total", "Make-before-break ownership handoffs executed with this node as source.", nil, float64(n.handoffs.Load()))
	e.Counter("rota_cluster_promotions_total", "Standby promotions executed on this node (failover).", nil, float64(n.promotions.Load()))
	e.Counter("rota_cluster_redirects_served_total", "421 ownership redirects answered for handed-off locations.", nil, float64(n.redirectsServed.Load()))
	e.Counter("rota_cluster_redirects_followed_total", "421 ownership redirects this node consumed and learned from.", nil, float64(n.redirectsFollowed.Load()))
	e.Counter("rota_cluster_table_applies_total", "Newer membership tables installed (steward, broadcast, or anti-entropy).", nil, float64(n.tableApplies.Load()))
	e.Counter("rota_cluster_shadow_ships_total", "Warm-standby shadow shipments sent to rendezvous runners-up.", nil, float64(n.shadowShips.Load()))
	e.Counter("rota_cluster_shadow_misses_total", "Locations promoted empty because no shadow had arrived.", nil, float64(n.shadowMisses.Load()))

	e.Counter("rota_cluster_auto_evictions_total", "Quorum-agreed automatic force-leaves stewarded by this node.", nil, float64(n.autoEvictions.Load()))
	e.Counter("rota_cluster_rejoins_total", "Fence-triggered drop-and-rejoin cycles performed by this node after eviction.", nil, float64(n.rejoins.Load()))
	e.Counter("rota_cluster_intent_repairs_total", "Dead stewards' partially applied membership plans finished or rolled back by this node.", nil, float64(n.intentRepairs.Load()))
	e.Counter("rota_cluster_fenced_gossip_total", "Gossip messages answered 421 because the sender was evicted (epoch fence).", nil, float64(n.fencedGossip.Load()))
	e.Gauge("rota_cluster_suspected_peers", "Peers the failure detector currently holds at Suspect or worse.", nil, float64(n.suspectedNow.Load()))

	e.Summary("rota_cluster_coordination_latency_us", "End-to-end federated admission latency in microseconds (free view through commit).", nil, n.coordLatency.Summary())

	now := time.Now()
	for _, id := range n.detector.Peers() {
		e.Gauge("rota_health_phi", "Current φ-accrual suspicion level, by peer (0 = freshly heard from).",
			obs.L("peer", id), n.detector.Phi(id, now))
	}

	for _, ps := range peers {
		if ps.isSelf {
			continue
		}
		base := obs.L("peer", ps.ID)
		sum := ps.rpc.Summary()
		for _, oc := range []struct {
			outcome string
			n       uint64
		}{{"ok", sum.OK}, {"error", sum.Errors}, {"timeout", sum.Timeouts}} {
			e.Counter("rota_cluster_peer_rpc_total", "Peer RPCs issued, by peer and outcome.",
				base.With("outcome", oc.outcome), float64(oc.n))
		}
		e.Counter("rota_cluster_peer_rpc_retries_total", "Retry attempts spent on peer RPCs, by peer.", base, float64(sum.Retries))
		e.Summary("rota_cluster_peer_rpc_latency_us", "Peer RPC latency in microseconds (all attempts of a logical call), by peer.",
			base, ps.rpc.LatencySummary())
	}

	for _, es := range obs.SortedEndpoints(n.httpStats) {
		es.Collect(e, obs.L("layer", "cluster"))
	}
}
