package cluster

import (
	"net/http"
	"net/url"
	"sort"

	"repro/internal/obs/assure"
	"repro/internal/server"
)

// Deadline-assurance fan-out: GET /v1/assure on any member reports the
// whole cluster. Promise records are deliberately node-local — a job
// that migrated leaves a `transferred` record behind and a live promise
// ahead — so the cluster view is a sum of per-node reports plus, for a
// single job, a precedence merge of each node's account.

// ClusterAssureResponse is the cluster-wide GET /v1/assure payload.
type ClusterAssureResponse struct {
	Cluster bool `json:"cluster"`
	// Nodes maps member ID to its local promise report.
	Nodes map[string]assure.Report `json:"nodes"`
	// Totals sums the per-node counters; attainment is recomputed over
	// the summed outcomes (transferred promises are counted once, by the
	// node that finished the job, so the sum is double-count-free).
	Totals assure.Stats `json:"totals"`
}

// ClusterAssureJobResponse is the cluster-wide GET /v1/assure?job=X
// payload: the authoritative merged view plus every node's account.
type ClusterAssureJobResponse struct {
	Job     string                              `json:"job"`
	Found   bool                                `json:"found"`
	Promise assure.Promise                      `json:"promise,omitempty"`
	Nodes   map[string]server.AssureJobResponse `json:"nodes,omitempty"`
}

func (n *Node) handleAssure(w http.ResponseWriter, r *http.Request) {
	if n.srv.Assure() == nil || r.Header.Get(headerForwarded) != "" {
		// Disabled (the server answers 404) or a peer's fan-out leg:
		// serve the local report, no loops.
		n.srv.ServeHTTP(w, r)
		return
	}
	headers := map[string]string{headerForwarded: n.self.ID}
	if job := r.URL.Query().Get("job"); job != "" {
		resp := ClusterAssureJobResponse{Job: job, Nodes: map[string]server.AssureJobResponse{}}
		var views []assure.Promise
		for _, ps := range n.peersSnapshot() {
			var view server.AssureJobResponse
			if ps.isSelf {
				p, ok := n.srv.Assure().Lookup(job)
				view = server.AssureJobResponse{Job: job, Found: ok, Promise: p}
			} else if err := n.client.call(r.Context(), http.MethodGet,
				ps.URL+"/v1/assure?job="+url.QueryEscape(job), nil, &view, headers, ps.rpc); err != nil {
				continue
			}
			resp.Nodes[ps.ID] = view
			if view.Found {
				views = append(views, view.Promise)
			}
		}
		resp.Promise, resp.Found = assure.Merge(views)
		writeJSON(w, http.StatusOK, resp)
		return
	}
	out := ClusterAssureResponse{Cluster: true, Nodes: map[string]assure.Report{}}
	var parts []assure.Stats
	for _, ps := range n.peersSnapshot() {
		var rep assure.Report
		if ps.isSelf {
			rep = n.srv.Assure().Report()
		} else if err := n.client.call(r.Context(), http.MethodGet,
			ps.URL+"/v1/assure", nil, &rep, headers, ps.rpc); err != nil {
			continue
		}
		out.Nodes[ps.ID] = rep
		parts = append(parts, rep.Stats)
	}
	out.Totals = assure.MergeStats(parts)
	writeJSON(w, http.StatusOK, out)
}

// FlightState is the health/membership digest frozen into every
// flight-recorder snapshot on this node.
func (n *Node) FlightState() any {
	t := n.reg.Snapshot()
	members := make([]string, 0, len(t.Members))
	for _, m := range t.Members {
		members = append(members, m.ID)
	}
	sort.Strings(members)
	return map[string]any{
		"node":             n.self.ID,
		"membership_epoch": t.Epoch,
		"members":          members,
		"suspected":        n.suspectedNow.Load(),
		"auto_evictions":   n.autoEvictions.Load(),
		"rejoins":          n.rejoins.Load(),
		"ledger_now":       n.srv.Ledger().Now(),
		"ledger_epoch":     n.srv.Ledger().Epoch(),
	}
}
