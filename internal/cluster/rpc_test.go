package cluster

import (
	"context"
	"errors"
	"net/http"
	"net/http/httptest"
	"strings"
	"sync/atomic"
	"testing"
	"time"

	"repro/internal/obs"
)

// TestRPCRetriesServerErrorsThenSucceeds: 5xx responses are retried with
// backoff until an attempt lands.
func TestRPCRetriesServerErrorsThenSucceeds(t *testing.T) {
	var hits atomic.Int64
	ts := httptest.NewServer(http.HandlerFunc(func(w http.ResponseWriter, r *http.Request) {
		if hits.Add(1) <= 2 {
			http.Error(w, "briefly unhealthy", http.StatusInternalServerError)
			return
		}
		w.Write([]byte(`{"ok":true}`))
	}))
	defer ts.Close()

	c := newRPCClient(rpcOptions{timeout: time.Second, retries: 3}, nil, nil)
	var out struct {
		OK bool `json:"ok"`
	}
	if err := c.call(context.Background(), http.MethodGet, ts.URL, nil, &out, nil, nil); err != nil || !out.OK {
		t.Fatalf("call after retries: %v, %+v", err, out)
	}
	if got := hits.Load(); got != 3 {
		t.Fatalf("attempts = %d, want 3", got)
	}
}

// TestRPCClientErrorIsFinal: a 4xx verdict is the peer's answer, not a
// transient failure — exactly one attempt, error preserved.
func TestRPCClientErrorIsFinal(t *testing.T) {
	var hits atomic.Int64
	ts := httptest.NewServer(http.HandlerFunc(func(w http.ResponseWriter, r *http.Request) {
		hits.Add(1)
		http.Error(w, "no such thing", http.StatusNotFound)
	}))
	defer ts.Close()

	c := newRPCClient(rpcOptions{timeout: time.Second, retries: 3}, nil, nil)
	err := c.call(context.Background(), http.MethodGet, ts.URL, nil, nil, nil, nil)
	var se *httpStatusError
	if !errors.As(err, &se) || se.status != http.StatusNotFound {
		t.Fatalf("err = %v, want preserved 404 status error", err)
	}
	if got := hits.Load(); got != 1 {
		t.Fatalf("attempts = %d, want 1 (4xx is final)", got)
	}
}

// TestRPCNoRetryAfterCallerGone is the regression test for the futile
// retry + error-masking bug: once the caller's context is done, no
// further attempts run, and the error surfaced is the last attempt's
// actual failure (the peer's 500), not a bare context error.
func TestRPCNoRetryAfterCallerGone(t *testing.T) {
	ctx, cancel := context.WithCancel(context.Background())
	var hits atomic.Int64
	ts := httptest.NewServer(http.HandlerFunc(func(w http.ResponseWriter, r *http.Request) {
		if hits.Add(1) == 1 {
			// The caller walks away just after this attempt's verdict
			// lands: before the next retry, whether the loop is at its
			// post-attempt check or already sleeping in backoff.
			time.AfterFunc(5*time.Millisecond, cancel)
		}
		http.Error(w, "shard wedged", http.StatusInternalServerError)
	}))
	defer ts.Close()

	c := newRPCClient(rpcOptions{timeout: time.Second, retries: 5}, nil, nil)
	err := c.call(ctx, http.MethodGet, ts.URL, nil, nil, nil, nil)
	if err == nil {
		t.Fatal("call succeeded against a 500ing peer")
	}
	var se *httpStatusError
	if !errors.As(err, &se) || se.status != http.StatusInternalServerError {
		t.Fatalf("peer failure masked: err = %v, want the 500 status error in the chain", err)
	}
	if !strings.Contains(err.Error(), "shard wedged") {
		t.Fatalf("peer's own message lost: %v", err)
	}
	if got := hits.Load(); got != 1 {
		t.Fatalf("attempts = %d, want 1 (caller gone, retries are futile)", got)
	}
}

// TestRPCCallerCancellationNotRetried: a transport failure caused by the
// caller's own cancellation is final.
func TestRPCCallerCancellationNotRetried(t *testing.T) {
	var hits atomic.Int64
	release := make(chan struct{})
	ts := httptest.NewServer(http.HandlerFunc(func(w http.ResponseWriter, r *http.Request) {
		hits.Add(1)
		<-release
	}))
	defer ts.Close()
	defer close(release)

	ctx, cancel := context.WithCancel(context.Background())
	go func() {
		time.Sleep(30 * time.Millisecond)
		cancel()
	}()
	c := newRPCClient(rpcOptions{timeout: 5 * time.Second, retries: 5}, nil, nil)
	err := c.call(ctx, http.MethodGet, ts.URL, nil, nil, nil, nil)
	if !errors.Is(err, context.Canceled) {
		t.Fatalf("err = %v, want context.Canceled in the chain", err)
	}
	if got := hits.Load(); got != 1 {
		t.Fatalf("attempts = %d, want 1 (cancellation is not retryable)", got)
	}
}

// TestRPCOnceCarriesTraceHeader: the context's trace ID rides every
// outgoing peer RPC.
func TestRPCOnceCarriesTraceHeader(t *testing.T) {
	var got atomic.Value
	ts := httptest.NewServer(http.HandlerFunc(func(w http.ResponseWriter, r *http.Request) {
		got.Store(r.Header.Get(obs.HeaderTraceID))
		w.Write([]byte(`{}`))
	}))
	defer ts.Close()

	c := newRPCClient(rpcOptions{timeout: time.Second}, nil, nil)
	ctx := obs.WithTrace(context.Background(), "rpc-trace-9")
	if err := c.call(ctx, http.MethodGet, ts.URL, nil, nil, nil, nil); err != nil {
		t.Fatal(err)
	}
	if got.Load() != "rpc-trace-9" {
		t.Fatalf("peer saw trace %q", got.Load())
	}
}
