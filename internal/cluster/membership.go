package cluster

import (
	"bytes"
	"context"
	"encoding/json"
	"errors"
	"fmt"
	"io"
	"net/http"
	"sort"
	"strings"

	"repro/internal/membership"
	"repro/internal/metrics"
	"repro/internal/obs/flightrec"
	"repro/internal/obs/span"
	"repro/internal/resource"
	"repro/internal/server"
)

// Dynamic membership: nodes join and leave at runtime, ownership of
// locations follows an epoch-versioned table (rendezvous hashing plus
// explicit pins), and each ownership handoff rides the same
// make-before-break discipline as the paper's migrate rule — the new
// owner holds the location's full ledger state before the old owner
// drops it, so committed reservations are never lost and the
// no-overcommitment invariant holds on every node at every step.
//
// The moving parts:
//
//   - Every node publishes an immutable *membership.Table through a
//     Registry; epochs only move forward. The steward of a membership
//     change (whichever member received the join/leave request) builds
//     the next table, executes the implied handoffs, applies the table
//     locally and broadcasts it. Peers also converge by anti-entropy:
//     gossip carries the sender's epoch, and a node that hears a higher
//     one fetches the table.
//
//   - Between a handoff completing and the new table reaching everyone,
//     routing is covered by per-node overlays: the old owner answers
//     421 Misdirected Request with the new owner's coordinates
//     (handedOff), the new owner accepts traffic for locations the
//     table does not yet grant it (pendingOwned), and any node that
//     followed a redirect remembers it (learned). Overlays die as soon
//     as a table of an equal-or-higher epoch lands.
//
//   - Holds that were mid-2PC when their location moved keep working:
//     the old owner remembers their keys (movedKeys) and forwards the
//     coordinator's eventual commit/abort to the new owner.
//
//   - Each owned location has a warm standby — the rendezvous runner-up,
//     which is exactly the node LeaveMoves would hand the location to —
//     fed by gossip-shipped ledger exports (shadows). A dead primary is
//     force-left: standbys promote from their shadows without the
//     primary's cooperation.

// ownerRef is one overlay routing entry: where a location (or a moved
// hold's key) now lives, and the table epoch the move belongs to.
type ownerRef struct {
	id    string
	url   string
	epoch uint64
}

// errStaleOwner signals that a coordination step discovered mid-flight
// that a participant no longer owns part of the footprint; the caller
// re-resolves owners and retries.
var errStaleOwner = errors.New("cluster: ownership moved, retry with refreshed owners")

// maxOwnerRetries bounds how many times one admission re-resolves
// ownership after a redirect before giving up.
const maxOwnerRetries = 3

// Table returns the node's current membership table (tests, stats).
func (n *Node) Table() *membership.Table { return n.reg.Snapshot() }

// peersSnapshot returns the live peer list (membership order).
func (n *Node) peersSnapshot() []*peerState {
	n.pmu.RLock()
	defer n.pmu.RUnlock()
	out := make([]*peerState, len(n.peers))
	copy(out, n.peers)
	return out
}

// peerByID resolves a member ID to its live peer state.
func (n *Node) peerByID(id string) (*peerState, bool) {
	n.pmu.RLock()
	defer n.pmu.RUnlock()
	ps, ok := n.byID[id]
	return ps, ok
}

// peerFor resolves an owner reference to a peer state, minting one for
// a member learned via redirect before its table arrived.
func (n *Node) peerFor(ref ownerRef) *peerState {
	n.pmu.Lock()
	defer n.pmu.Unlock()
	if ps, ok := n.byID[ref.id]; ok {
		return ps
	}
	ps := &peerState{Peer: Peer{ID: ref.id, URL: ref.url}, rpc: metrics.NewRPCStats()}
	ps.isSelf = ref.id == n.self.ID
	n.byID[ref.id] = ps
	return ps
}

// lookupOwner resolves a location to its current owner: overlays first
// (they are newer than the published table during a handoff window),
// then the table.
func (n *Node) lookupOwner(loc resource.Location) (ownerRef, bool) {
	tbl := n.reg.Snapshot()
	n.omu.Lock()
	if ep, ok := n.pendingOwned[loc]; ok && ep > tbl.Epoch {
		n.omu.Unlock()
		return ownerRef{id: n.self.ID, url: n.self.URL, epoch: ep}, true
	}
	if h, ok := n.handedOff[loc]; ok && h.epoch > tbl.Epoch {
		n.omu.Unlock()
		return h, true
	}
	if l, ok := n.learned[loc]; ok && l.epoch > tbl.Epoch {
		n.omu.Unlock()
		return l, true
	}
	n.omu.Unlock()
	if id, ok := tbl.OwnerOf(loc); ok {
		m, _ := tbl.Member(id)
		return ownerRef{id: id, url: m.URL, epoch: tbl.Epoch}, true
	}
	return ownerRef{}, false
}

// redirectFor builds the 421 body for a request touching handed-off
// locations: the new owner of the first moved location, plus every
// requested location that moved to that same owner.
func (n *Node) redirectFor(locs []resource.Location) (membership.RedirectResponse, bool) {
	n.omu.Lock()
	defer n.omu.Unlock()
	for _, loc := range locs {
		h, ok := n.handedOff[loc]
		if !ok {
			continue
		}
		red := membership.RedirectResponse{OwnerID: h.id, OwnerURL: h.url, Epoch: h.epoch}
		for _, l2 := range locs {
			if h2, ok := n.handedOff[l2]; ok && h2.id == h.id {
				red.Locs = append(red.Locs, l2)
			}
		}
		return red, true
	}
	return membership.RedirectResponse{}, false
}

// tableRedirect builds a 421 from the published table for locations
// owned elsewhere: the owner of the first foreign location, plus every
// listed location that lives with that same owner. The overlay-driven
// redirectFor covers the handoff window before the new table lands;
// this covers the window after — a peer whose table is one epoch
// behind forwards a job here right as the final table clears the
// overlays, and the table itself is then the only record of where the
// footprint went.
func (n *Node) tableRedirect(locs []resource.Location) (membership.RedirectResponse, bool) {
	tbl := n.reg.Snapshot()
	for _, loc := range locs {
		id, ok := tbl.OwnerOf(loc)
		if !ok || id == n.self.ID {
			continue
		}
		m, ok := tbl.Member(id)
		if !ok {
			continue
		}
		red := membership.RedirectResponse{OwnerID: id, OwnerURL: m.URL, Epoch: tbl.Epoch}
		for _, l2 := range locs {
			if o2, ok := tbl.OwnerOf(l2); ok && o2 == id {
				red.Locs = append(red.Locs, l2)
			}
		}
		return red, true
	}
	return membership.RedirectResponse{}, false
}

// serveRedirect answers 421 Misdirected Request with the new owner.
func (n *Node) serveRedirect(w http.ResponseWriter, red membership.RedirectResponse) {
	n.redirectsServed.Add(1)
	writeJSON(w, http.StatusMisdirectedRequest, red)
}

// learnRedirect records a followed redirect in the learned overlay so
// later requests route straight to the new owner.
func (n *Node) learnRedirect(red membership.RedirectResponse) {
	ref := ownerRef{id: red.OwnerID, url: red.OwnerURL, epoch: red.Epoch}
	n.omu.Lock()
	for _, loc := range red.Locs {
		if cur, ok := n.learned[loc]; !ok || red.Epoch > cur.epoch {
			n.learned[loc] = ref
		}
	}
	n.omu.Unlock()
	n.redirectsFollowed.Add(1)
}

// staleOwner inspects a peer-RPC failure for an ownership redirect;
// when found, the new owner is learned and the caller should retry
// against refreshed ownership. A local ErrNotOwned on a self
// participant means the same thing: the location left this node while
// the coordination was in flight.
func (n *Node) staleOwner(err error) bool {
	if err == nil {
		return false
	}
	if errors.Is(err, errStaleOwner) {
		return true
	}
	var se *httpStatusError
	if !errors.As(err, &se) || se.status != http.StatusMisdirectedRequest {
		return false
	}
	red, derr := membership.DecodeRedirect([]byte(se.body))
	if derr != nil {
		return false
	}
	n.learnRedirect(red)
	return true
}

// applyTable installs a newer membership table: the registry advances,
// the peer list is rebuilt (existing peer states survive so RPC stats
// and gossip history carry over), overlays the table supersedes are
// cleared, and standing watches re-evaluate against the new ownership.
//
// A newer table that excludes this node is refused: it means the
// cluster evicted us (we were partitioned, presumed dead, failed over).
// Applying it would leave the node routing a cluster it no longer
// belongs to; instead the fence-and-rejoin path runs — drop all stale
// state and re-enter as a fresh member via any member of that table.
func (n *Node) applyTable(t *membership.Table) bool {
	if t == nil {
		return false
	}
	if _, ok := t.Member(n.self.ID); !ok {
		if t.Epoch > n.reg.Epoch() && len(t.Members) > 0 {
			n.obs.Log("membership.evicted",
				"node", n.self.ID, "epoch", t.Epoch)
			// Any member of the fencing table can readmit us — and some
			// of them may themselves be dead (the table that fenced us
			// may predate their own eviction), so offer every URL.
			vias := make([]string, 0, len(t.Members))
			for _, m := range t.Members {
				if m.ID != n.self.ID {
					vias = append(vias, m.URL)
				}
			}
			n.maybeRejoin(vias...)
		}
		return false
	}
	return n.installTable(t)
}

// installTable is applyTable without the self-membership check — the
// graceful self-leave path applies a table that excludes this node on
// purpose.
func (n *Node) installTable(t *membership.Table) bool {
	prev := n.reg.Snapshot()
	if !n.reg.Apply(t) {
		return false
	}
	n.tableApplies.Add(1)
	n.pmu.Lock()
	peers := make([]*peerState, 0, len(t.Members))
	byID := make(map[string]*peerState, len(t.Members))
	for _, m := range t.Members {
		ps, ok := n.byID[m.ID]
		if !ok || ps.URL != m.URL {
			// A member can rejoin under the same ID at a new address, and
			// a stale overlay ref can re-mint the old address (peerFor)
			// between its eviction and its return. The table is
			// authoritative for member URLs: re-seat the peer whenever
			// they disagree, or gossip to the dead incarnation forever.
			ps = &peerState{Peer: Peer{ID: m.ID, URL: m.URL}, rpc: metrics.NewRPCStats()}
			ps.isSelf = m.ID == n.self.ID
		}
		peers = append(peers, ps)
		byID[m.ID] = ps
	}
	n.peers = peers
	n.byID = byID
	n.pmu.Unlock()
	// A member absent from the previous table is a (re)joiner. Any
	// detector history or accusations held under its ID describe a dead
	// incarnation — including the very silence that evicted it — so a
	// rejoiner would otherwise arrive with φ already above the eviction
	// level and be force-left again before it ships its first shadow.
	// Forget it: the fresh incarnation restarts inside the detector's
	// bootstrap window, immune until a new inter-arrival baseline forms.
	for _, m := range t.Members {
		if m.ID == n.self.ID {
			continue
		}
		if _, was := prev.Member(m.ID); !was {
			n.detector.Forget(m.ID)
			n.hmu.Lock()
			delete(n.accusals, m.ID)
			n.hmu.Unlock()
		}
	}
	var rollback []resource.Location
	n.omu.Lock()
	for loc, ep := range n.pendingOwned {
		if id, ok := t.OwnerOf(loc); ok && id == n.self.ID {
			// Granted: the table now records us as the owner.
			delete(n.pendingOwned, loc)
		} else if ep <= t.Epoch {
			// Superseded: the epoch this install belonged to has been
			// published and assigned the location elsewhere — a repaired
			// (rolled-back) plan. Drop the un-granted install so we stop
			// accepting traffic the table routes to someone else.
			delete(n.pendingOwned, loc)
			rollback = append(rollback, loc)
		}
	}
	for loc, h := range n.handedOff {
		if h.epoch <= t.Epoch {
			delete(n.handedOff, loc)
		}
	}
	for loc, l := range n.learned {
		if l.epoch <= t.Epoch {
			delete(n.learned, loc)
		}
	}
	n.omu.Unlock()
	if len(rollback) > 0 {
		n.srv.Ledger().DropLocations(rollback)
		n.obs.Log("membership.rollback",
			"node", n.self.ID, "epoch", t.Epoch, "locations", len(rollback))
	}
	// Close journaled intents the new table proves finished.
	n.imu.Lock()
	for steward, it := range n.intents {
		if it.TargetEpoch <= t.Epoch {
			delete(n.intents, steward)
		}
	}
	n.imu.Unlock()
	n.obs.Log("membership.apply",
		"node", n.self.ID, "epoch", t.Epoch, "members", len(t.Members))
	// A member present before and gone now was evicted (or left). Freeze
	// a flight-recorder snapshot on every node applying the shrink: the
	// run-up evidence — suspicion, accusations, the quorum forming — is
	// exactly what an incident review needs, and snapshots landing on
	// several nodes at once are what lets rotadoctor stitch the eviction
	// into one cross-node timeline.
	if rec := n.srv.FlightRecorder(); rec != nil {
		for _, m := range prev.Members {
			if m.ID == n.self.ID {
				continue
			}
			if _, still := t.Member(m.ID); !still {
				rec.Trigger(flightrec.TriggerEviction, m.ID)
			}
		}
	}
	// Ownership changed: standing watches whose footprint touches moved
	// locations must re-evaluate through the fan-out evaluator.
	n.srv.Queries().Bump(n.srv.Ledger().Epoch(), "membership")
	return true
}

// broadcastTable pushes a freshly applied table to every other member
// (best effort; gossip anti-entropy repairs any miss).
func (n *Node) broadcastTable(ctx context.Context, t *membership.Table) {
	body, err := json.Marshal(t.ToWire())
	if err != nil {
		return
	}
	for _, ps := range n.peersSnapshot() {
		if ps.isSelf {
			continue
		}
		_ = n.client.call(ctx, http.MethodPost, ps.URL+"/v1/cluster/table", body, nil, nil, ps.rpc)
	}
}

// fetchTable pulls a peer's table and applies it if newer (anti-entropy
// after gossip advertised a higher epoch).
func (n *Node) fetchTable(url string) {
	ctx, cancel := context.WithTimeout(context.Background(), n.client.timeout)
	defer cancel()
	var w membership.WireTable
	if err := n.client.call(ctx, http.MethodGet, url+"/v1/cluster/table", nil, &w, nil, nil); err != nil {
		return
	}
	if t, err := membership.FromWire(w); err == nil {
		n.applyTable(t)
	}
}

// installRequest ships exported location state between nodes: handoff
// installs and standby shadow feeds use the same body. Epoch is the
// table epoch the install belongs to (handoffs only; zero for shadow
// feeds): the receiver stamps its pendingOwned overlay with it so a
// final table that rolls the plan back can also roll back the install.
type installRequest struct {
	Epoch   uint64                  `json:"epoch,omitempty"`
	Exports []server.LocationExport `json:"exports"`
}

// promoteRequest asks a standby to take ownership of locations from its
// shadows (the force-leave path, when the primary cannot hand off).
type promoteRequest struct {
	Locs []resource.Location `json:"locs"`
}

// executeHandoff moves locations from this node to a new owner,
// make-before-break: freeze the flow paths, export, install on the new
// owner, and only then drop locally. On install failure nothing is
// dropped — the locations simply stay here (a retried install is
// idempotent: imports merge by name and key). After the drop, routing
// overlays cover the window until the new table propagates.
func (n *Node) executeHandoff(ctx context.Context, locs []resource.Location, toID, toURL string, epoch uint64) error {
	sctx, sp := n.spans.Start(ctx, span.KindHandoff)
	defer sp.End()
	sp.Attr("to", toID)
	sp.Attr("locations", len(locs))
	sp.Attr("epoch", epoch)
	n.flowMu.Lock()
	defer n.flowMu.Unlock()
	exports := n.srv.Ledger().ExportLocations(locs)
	body, err := json.Marshal(installRequest{Epoch: epoch, Exports: exports})
	if err != nil {
		sp.SetStatus(span.StatusError)
		return err
	}
	to := n.peerFor(ownerRef{id: toID, url: toURL, epoch: epoch})
	if err := n.client.call(sctx, http.MethodPost, toURL+"/v1/cluster/install", body, nil, nil, to.rpc); err != nil {
		sp.SetStatus(span.StatusError)
		sp.Attr("error", err)
		return fmt.Errorf("cluster: installing %d locations on %s: %w", len(locs), toID, err)
	}
	moved := n.srv.Ledger().DropLocations(locs)
	ref := ownerRef{id: toID, url: toURL, epoch: epoch}
	n.omu.Lock()
	for _, loc := range locs {
		n.handedOff[loc] = ref
		delete(n.learned, loc)
	}
	for _, key := range moved {
		n.movedKeys[key] = ref
	}
	n.omu.Unlock()
	n.handoffs.Add(1)
	sp.Attr("moved_keys", len(moved))
	n.obs.Log("membership.handoff",
		"node", n.self.ID, "to", toID, "locations", len(locs), "moved_keys", len(moved), "epoch", epoch)
	return nil
}

// ShadowFor reports the warm-standby shadow this node holds for loc —
// how many commitment slices and leased holds it carries. Callers
// (e.g. the failover selftest) poll it before killing a primary so the
// promotion is judged against a shadow that has actually caught up.
func (n *Node) ShadowFor(loc resource.Location) (commitments, holds int, ok bool) {
	n.smu.Lock()
	defer n.smu.Unlock()
	exp, found := n.shadows[loc]
	if !found {
		return 0, 0, false
	}
	return len(exp.Commitments), len(exp.Holds), true
}

// promoteLocal takes ownership of locations from local shadows — the
// standby half of failover. A location without a shadow is still
// adopted (an empty shard) so the cluster keeps routing; the miss is
// counted.
func (n *Node) promoteLocal(ctx context.Context, locs []resource.Location, epoch uint64) error {
	_, sp := n.spans.Start(ctx, span.KindPromote)
	defer sp.End()
	sp.Attr("locations", len(locs))
	sp.Attr("epoch", epoch)
	var exports []server.LocationExport
	misses := 0
	n.smu.Lock()
	for _, loc := range locs {
		if exp, ok := n.shadows[loc]; ok {
			exports = append(exports, exp)
		} else {
			misses++
		}
	}
	n.smu.Unlock()
	n.srv.Ledger().AddOwned(locs)
	if err := n.srv.Ledger().ImportLocations(exports); err != nil {
		sp.SetStatus(span.StatusError)
		sp.Attr("error", err)
		return fmt.Errorf("cluster: promoting from shadows: %w", err)
	}
	n.omu.Lock()
	for _, loc := range locs {
		n.pendingOwned[loc] = epoch
		delete(n.handedOff, loc)
		delete(n.learned, loc)
	}
	n.omu.Unlock()
	if misses > 0 {
		n.shadowMisses.Add(uint64(misses))
	}
	n.promotions.Add(1)
	sp.Attr("shadow_misses", misses)
	n.obs.Log("membership.promote",
		"node", n.self.ID, "locations", len(locs), "shadow_misses", misses, "epoch", epoch)
	return nil
}

// JoinCluster asks an existing member (the steward) to admit this node:
// the steward plans the rebalance, drives the handoffs (this node's
// install endpoint receives the ledger state before the reply arrives),
// and returns the new table. Pins force specific locations onto this
// node regardless of the hash.
func (n *Node) JoinCluster(ctx context.Context, steward string, pins []resource.Location) error {
	req := membership.JoinRequest{ID: n.self.ID, URL: n.self.URL, Pins: pins}
	body, err := json.Marshal(req)
	if err != nil {
		return err
	}
	var w membership.WireTable
	if err := n.client.call(ctx, http.MethodPost, steward+"/v1/cluster/join", body, &w, nil, nil); err != nil {
		return fmt.Errorf("cluster: joining via %s: %w", steward, err)
	}
	t, err := membership.FromWire(w)
	if err != nil {
		return fmt.Errorf("cluster: join reply: %w", err)
	}
	if !n.applyTable(t) && n.reg.Epoch() < t.Epoch {
		return fmt.Errorf("cluster: join table (epoch %d) rejected locally", t.Epoch)
	}
	return nil
}

// handleJoin is the steward side of /v1/cluster/join: announce the new
// member (roster only, no ownership change), journal the full plan as
// an intent, execute the implied moves as make-before-break handoffs,
// publish the final table, and hand it back to the joiner. A handoff
// that fails simply leaves its location with the old owner — the table
// only records moves that completed. If this steward dies partway, any
// survivor holding the gossiped intent repairs the plan (repairIntent)
// and publishes the final table itself.
func (n *Node) handleJoin(w http.ResponseWriter, r *http.Request) {
	if n.draining() {
		httpError(w, http.StatusServiceUnavailable, errors.New("cluster: draining, not accepting members"))
		return
	}
	body, err := readBody(w, r, n.maxBody)
	if err != nil {
		httpError(w, http.StatusBadRequest, err)
		return
	}
	req, err := membership.DecodeJoinRequest(body)
	if err != nil {
		httpError(w, http.StatusBadRequest, err)
		return
	}
	if err := n.acquireSteward(r.Context()); err != nil {
		httpError(w, http.StatusServiceUnavailable, err)
		return
	}
	defer n.releaseSteward()
	cur := n.reg.Snapshot()
	if m, ok := cur.Member(req.ID); ok && m.URL == req.URL {
		// Idempotent re-join: already a member, hand back the table.
		writeJSON(w, http.StatusOK, cur.ToWire())
		return
	}
	sctx, sp := n.spans.Start(r.Context(), span.KindJoin)
	defer sp.End()
	sp.Attr("member", req.ID)
	member := membership.Member{ID: req.ID, URL: req.URL}
	moves := cur.JoinMoves(member, req.Pins)
	// Announce the member before moving any data. Release, coordination,
	// and query fan-outs target the roster, so a commitment that lands on
	// the joiner mid-handoff is only reachable from nodes whose roster
	// already includes it. The announce table grows the roster one epoch
	// early and changes no ownership; the handoffs and the final table
	// then land at the epoch after it.
	announce := cur.Joined(member, nil, nil)
	if !n.applyTable(announce) {
		sp.SetStatus(span.StatusError)
		httpError(w, http.StatusConflict, errors.New("cluster: membership changed concurrently, retry the join"))
		return
	}
	// Journal the plan and push it to the survivors before any data
	// moves: from here on, a steward crash is repairable by anyone who
	// heard this gossip.
	pinStrs := make([]string, len(req.Pins))
	for i, loc := range req.Pins {
		pinStrs[i] = string(loc)
	}
	n.setOwnIntent(&membership.Intent{
		Steward: n.self.ID, Kind: membership.IntentJoin, Member: member,
		AnnounceEpoch: announce.Epoch, TargetEpoch: announce.Epoch + 1,
		Moves: moves, Pins: pinStrs, Stage: membership.StageAnnounced,
	})
	n.broadcastTable(sctx, announce)
	n.pushGossip(sctx)
	n.stage("join.announced", req.ID)
	nextEpoch := announce.Epoch + 1
	n.setOwnIntentStage(membership.StageMoving)
	n.stage("join.moving", req.ID)
	executed := make([]membership.Move, 0, len(moves))
	for _, grp := range groupMovesByFrom(moves) {
		var herr error
		if grp.from == n.self.ID {
			herr = n.executeHandoff(sctx, grp.locs, req.ID, req.URL, nextEpoch)
		} else if from, ok := cur.Member(grp.from); ok {
			herr = n.rpcHandoff(sctx, from, membership.HandoffRequest{
				Epoch: nextEpoch, Locs: grp.locs, To: req.ID, ToURL: req.URL})
		} else {
			herr = fmt.Errorf("cluster: move source %s not a member", grp.from)
		}
		if herr != nil {
			n.obs.Log("membership.handoff_failed",
				"from", grp.from, "to", req.ID, "error", herr)
			continue
		}
		executed = append(executed, grp.moves...)
		n.stage("join.handoff", grp.from)
	}
	gained := make(map[resource.Location]bool, len(executed))
	for _, mv := range executed {
		gained[mv.Loc] = true
	}
	pins := make([]resource.Location, 0, len(req.Pins))
	for _, loc := range req.Pins {
		if owner, ok := cur.OwnerOf(loc); gained[loc] || (ok && owner == req.ID) {
			pins = append(pins, loc)
		}
	}
	n.stage("join.committing", req.ID)
	next := announce.Joined(member, executed, pins)
	if !n.applyTable(next) {
		n.clearOwnIntent()
		// A survivor may have declared us dead mid-choreography and
		// repaired the plan; if the current table already publishes the
		// target epoch with the member aboard, the join succeeded —
		// return the repaired table instead of a spurious conflict.
		if repaired := n.reg.Snapshot(); repaired.Epoch >= next.Epoch {
			if _, ok := repaired.Member(req.ID); ok {
				n.obs.Log("membership.join_repaired",
					"member", req.ID, "epoch", repaired.Epoch)
				writeJSON(w, http.StatusOK, repaired.ToWire())
				return
			}
		}
		sp.SetStatus(span.StatusError)
		httpError(w, http.StatusConflict, errors.New("cluster: membership changed concurrently, retry the join"))
		return
	}
	n.clearOwnIntent()
	n.joins.Add(1)
	sp.Attr("epoch", next.Epoch)
	sp.Attr("moves", len(executed))
	n.obs.Log("membership.join",
		"member", req.ID, "epoch", next.Epoch, "moves", len(executed), "failed_moves", len(moves)-len(executed))
	n.broadcastTable(sctx, next)
	writeJSON(w, http.StatusOK, next.ToWire())
}

// handleLeave is the steward side of /v1/cluster/leave: take the
// steward semaphore (queueing behind an in-flight join with a bounded
// wait) and run the leave choreography.
func (n *Node) handleLeave(w http.ResponseWriter, r *http.Request) {
	body, err := readBody(w, r, n.maxBody)
	if err != nil {
		httpError(w, http.StatusBadRequest, err)
		return
	}
	req, err := membership.DecodeLeaveRequest(body)
	if err != nil {
		httpError(w, http.StatusBadRequest, err)
		return
	}
	if err := n.acquireSteward(r.Context()); err != nil {
		httpError(w, http.StatusServiceUnavailable, err)
		return
	}
	defer n.releaseSteward()
	next, status, err := n.stewardLeave(r.Context(), req)
	if err != nil {
		httpError(w, status, err)
		return
	}
	writeJSON(w, http.StatusOK, next.ToWire())
}

// stewardLeave runs the leave choreography with this node as steward
// (caller holds the steward semaphore). Graceful: the leaving node
// hands each location to its rendezvous successor (which is its warm
// standby) before the table drops it. Forced: the node is presumed
// dead, so each successor promotes from its gossip-fed shadow instead —
// committed state survives up to the last shadow shipment, and the
// ledger's lease sweep reclaims anything mid-2PC. The plan is journaled
// as an intent before any promotion so a steward crash is repairable.
func (n *Node) stewardLeave(ctx context.Context, req membership.LeaveRequest) (*membership.Table, int, error) {
	cur := n.reg.Snapshot()
	victim, ok := cur.Member(req.ID)
	if !ok {
		return nil, http.StatusNotFound, fmt.Errorf("cluster: %s is not a member", req.ID)
	}
	if len(cur.Members) == 1 {
		return nil, http.StatusBadRequest, errors.New("cluster: refusing to remove the last member")
	}
	sctx, sp := n.spans.Start(ctx, span.KindLeave)
	defer sp.End()
	sp.Attr("member", req.ID)
	sp.Attr("force", req.Force)
	moves := cur.LeaveMoves(req.ID)
	nextEpoch := cur.Epoch + 1
	// Journal the plan before any data moves (leaves announce no roster
	// change, so the intent itself is the announcement).
	n.setOwnIntent(&membership.Intent{
		Steward: n.self.ID, Kind: membership.IntentLeave, Member: victim, Force: req.Force,
		AnnounceEpoch: cur.Epoch, TargetEpoch: nextEpoch,
		Moves: moves, Stage: membership.StageAnnounced,
	})
	n.pushGossip(sctx)
	n.stage("leave.announced", req.ID)
	n.setOwnIntentStage(membership.StageMoving)
	n.stage("leave.moving", req.ID)
	for _, grp := range groupMovesByTo(moves) {
		if grp.to == "" {
			continue // roster would be empty; Validate blocks this anyway
		}
		toM, _ := cur.Member(grp.to)
		if !req.Force {
			var herr error
			if req.ID == n.self.ID {
				herr = n.executeHandoff(sctx, grp.locs, grp.to, toM.URL, nextEpoch)
			} else {
				herr = n.rpcHandoff(sctx, victim, membership.HandoffRequest{
					Epoch: nextEpoch, Locs: grp.locs, To: grp.to, ToURL: toM.URL})
			}
			if herr != nil {
				n.clearOwnIntent()
				sp.SetStatus(span.StatusError)
				sp.Attr("error", herr)
				return nil, http.StatusBadGateway,
					fmt.Errorf("cluster: graceful leave of %s failed (use force if it is dead): %w", req.ID, herr)
			}
			n.stage("leave.handoff", grp.to)
			continue
		}
		var perr error
		if grp.to == n.self.ID {
			perr = n.promoteLocal(sctx, grp.locs, nextEpoch)
		} else {
			perr = n.rpcPromote(sctx, toM, grp.locs)
		}
		if perr != nil {
			// Forced removal proceeds regardless: membership must converge
			// even if a standby cannot promote right now.
			n.obs.Log("membership.promote_failed", "to", grp.to, "error", perr)
		}
		n.stage("leave.handoff", grp.to)
	}
	n.stage("leave.committing", req.ID)
	next := cur.Left(req.ID, moves)
	applied := false
	if req.ID == n.self.ID {
		// Removing ourselves: the self-membership check must not refuse
		// the table we are publishing on purpose.
		applied = n.installTable(next)
	} else {
		applied = n.applyTable(next)
	}
	if !applied {
		n.clearOwnIntent()
		// A survivor may have repaired this plan after declaring us dead.
		if repaired := n.reg.Snapshot(); repaired.Epoch >= next.Epoch {
			if _, still := repaired.Member(req.ID); !still {
				n.obs.Log("membership.leave_repaired",
					"member", req.ID, "epoch", repaired.Epoch)
				return repaired, http.StatusOK, nil
			}
		}
		sp.SetStatus(span.StatusError)
		return nil, http.StatusConflict, errors.New("cluster: membership changed concurrently, retry the leave")
	}
	n.clearOwnIntent()
	n.leaves.Add(1)
	sp.Attr("epoch", next.Epoch)
	n.obs.Log("membership.leave",
		"member", req.ID, "force", req.Force, "epoch", next.Epoch, "moves", len(moves))
	n.broadcastTable(sctx, next)
	return next, http.StatusOK, nil
}

// moveGroup is one handoff's worth of moves: same source, same target.
type moveGroup struct {
	from, to string
	locs     []resource.Location
	moves    []membership.Move
}

func groupMovesByFrom(moves []membership.Move) []moveGroup {
	return groupMoves(moves, func(m membership.Move) string { return m.From })
}

func groupMovesByTo(moves []membership.Move) []moveGroup {
	return groupMoves(moves, func(m membership.Move) string { return m.To })
}

func groupMoves(moves []membership.Move, keyOf func(membership.Move) string) []moveGroup {
	byKey := make(map[string]*moveGroup)
	var keys []string
	for _, mv := range moves {
		k := keyOf(mv)
		g, ok := byKey[k]
		if !ok {
			g = &moveGroup{from: mv.From, to: mv.To}
			byKey[k] = g
			keys = append(keys, k)
		}
		g.locs = append(g.locs, mv.Loc)
		g.moves = append(g.moves, mv)
	}
	sort.Strings(keys)
	out := make([]moveGroup, 0, len(keys))
	for _, k := range keys {
		out = append(out, *byKey[k])
	}
	return out
}

func (n *Node) rpcHandoff(ctx context.Context, from membership.Member, req membership.HandoffRequest) error {
	body, err := json.Marshal(req)
	if err != nil {
		return err
	}
	ps := n.peerFor(ownerRef{id: from.ID, url: from.URL})
	if err := n.client.call(ctx, http.MethodPost, from.URL+"/v1/cluster/handoff", body, nil, nil, ps.rpc); err != nil {
		return fmt.Errorf("cluster: handoff on %s: %w", from.ID, err)
	}
	return nil
}

func (n *Node) rpcPromote(ctx context.Context, to membership.Member, locs []resource.Location) error {
	body, err := json.Marshal(promoteRequest{Locs: locs})
	if err != nil {
		return err
	}
	ps := n.peerFor(ownerRef{id: to.ID, url: to.URL})
	if err := n.client.call(ctx, http.MethodPost, to.URL+"/v1/cluster/promote", body, nil, nil, ps.rpc); err != nil {
		return fmt.Errorf("cluster: promote on %s: %w", to.ID, err)
	}
	return nil
}

// handleHandoff executes a steward-ordered handoff with this node as
// the source.
func (n *Node) handleHandoff(w http.ResponseWriter, r *http.Request) {
	body, err := readBody(w, r, n.maxBody)
	if err != nil {
		httpError(w, http.StatusBadRequest, err)
		return
	}
	req, err := membership.DecodeHandoffRequest(body)
	if err != nil {
		httpError(w, http.StatusBadRequest, err)
		return
	}
	if req.To == n.self.ID {
		httpError(w, http.StatusBadRequest, errors.New("cluster: handoff to self"))
		return
	}
	if err := n.executeHandoff(r.Context(), req.Locs, req.To, req.ToURL, req.Epoch); err != nil {
		httpError(w, http.StatusBadGateway, err)
		return
	}
	writeJSON(w, http.StatusOK, map[string]any{"handed_off": len(req.Locs), "to": req.To})
}

// handleInstall is the receiving half of a handoff: adopt the exported
// locations (ownership first, so concurrent traffic is accepted), then
// install their ledger state. On import failure the adoption is rolled
// back — the source has not dropped anything yet.
func (n *Node) handleInstall(w http.ResponseWriter, r *http.Request) {
	body, err := readBody(w, r, n.maxBody)
	if err != nil {
		httpError(w, http.StatusBadRequest, err)
		return
	}
	var req installRequest
	if err := json.Unmarshal(body, &req); err != nil {
		httpError(w, http.StatusBadRequest, fmt.Errorf("cluster: bad install body: %w", err))
		return
	}
	locs := make([]resource.Location, 0, len(req.Exports))
	for _, exp := range req.Exports {
		locs = append(locs, exp.Loc)
	}
	n.srv.Ledger().AddOwned(locs)
	if err := n.srv.Ledger().ImportLocations(req.Exports); err != nil {
		n.srv.Ledger().DropLocations(locs)
		httpError(w, http.StatusConflict, err)
		return
	}
	epoch := req.Epoch
	if epoch == 0 {
		epoch = n.reg.Epoch() + 1 // older senders: assume the next epoch
	}
	n.omu.Lock()
	for _, loc := range locs {
		n.pendingOwned[loc] = epoch
		delete(n.handedOff, loc)
		delete(n.learned, loc)
	}
	n.omu.Unlock()
	n.obs.Log("membership.install", "node", n.self.ID, "locations", len(locs))
	writeJSON(w, http.StatusOK, map[string]any{"installed": len(locs)})
}

// handlePromote promotes this node from standby to primary for the
// given locations (steward-ordered, force-leave path).
func (n *Node) handlePromote(w http.ResponseWriter, r *http.Request) {
	body, err := readBody(w, r, n.maxBody)
	if err != nil {
		httpError(w, http.StatusBadRequest, err)
		return
	}
	var req promoteRequest
	if err := json.Unmarshal(body, &req); err != nil || len(req.Locs) == 0 {
		httpError(w, http.StatusBadRequest, errors.New("cluster: promote needs locs"))
		return
	}
	if err := n.promoteLocal(r.Context(), req.Locs, n.reg.Epoch()+1); err != nil {
		httpError(w, http.StatusConflict, err)
		return
	}
	writeJSON(w, http.StatusOK, map[string]any{"promoted": len(req.Locs)})
}

// handleShadow stores a primary's shipped exports as this node's warm
// standby state for those locations.
func (n *Node) handleShadow(w http.ResponseWriter, r *http.Request) {
	body, err := readBody(w, r, n.maxBody)
	if err != nil {
		httpError(w, http.StatusBadRequest, err)
		return
	}
	var req installRequest
	if err := json.Unmarshal(body, &req); err != nil {
		httpError(w, http.StatusBadRequest, fmt.Errorf("cluster: bad shadow body: %w", err))
		return
	}
	n.smu.Lock()
	for _, exp := range req.Exports {
		n.shadows[exp.Loc] = exp
	}
	n.smu.Unlock()
	writeJSON(w, http.StatusOK, map[string]any{"shadowed": len(req.Exports)})
}

// handleTableGet serves the current table (anti-entropy pulls, joiners).
func (n *Node) handleTableGet(w http.ResponseWriter, r *http.Request) {
	writeJSON(w, http.StatusOK, n.reg.Snapshot().ToWire())
}

// handleTablePost applies a broadcast table if it is newer.
func (n *Node) handleTablePost(w http.ResponseWriter, r *http.Request) {
	body, err := readBody(w, r, n.maxBody)
	if err != nil {
		httpError(w, http.StatusBadRequest, err)
		return
	}
	t, err := membership.DecodeTable(body)
	if err != nil {
		httpError(w, http.StatusBadRequest, err)
		return
	}
	applied := n.applyTable(t)
	writeJSON(w, http.StatusOK, map[string]any{"applied": applied, "epoch": n.reg.Epoch()})
}

// shipShadows sends each owned location's export to its rendezvous
// standby whenever the ledger changed since the last shipment — the
// gossip-ticked feed that keeps standbys warm.
func (n *Node) shipShadows(ctx context.Context, tbl *membership.Table) {
	ep := n.srv.Ledger().Epoch()
	if ep == n.lastShipped {
		return
	}
	byStandby := make(map[string][]resource.Location)
	for _, loc := range tbl.Locations(n.self.ID) {
		if sb := tbl.StandbyOf(loc); sb != "" && sb != n.self.ID {
			byStandby[sb] = append(byStandby[sb], loc)
		}
	}
	ids := make([]string, 0, len(byStandby))
	for id := range byStandby {
		ids = append(ids, id)
	}
	sort.Strings(ids)
	for _, id := range ids {
		m, ok := tbl.Member(id)
		if !ok {
			continue
		}
		exports := n.srv.Ledger().ExportLocations(byStandby[id])
		body, err := json.Marshal(installRequest{Exports: exports})
		if err != nil {
			continue
		}
		ps := n.peerFor(ownerRef{id: m.ID, url: m.URL})
		if err := n.client.call(ctx, http.MethodPost, m.URL+"/v1/cluster/shadow", body, nil, nil, ps.rpc); err == nil {
			n.shadowShips.Add(1)
		}
	}
	n.lastShipped = ep
}

// releaseTargets is the peer set a cluster-wide release fans out to:
// the live member list plus any overlay owners — a node that just
// received locations may hold commitments before the table naming it
// reaches this node.
func (n *Node) releaseTargets() []*peerState {
	out := n.peersSnapshot()
	seen := make(map[string]bool, len(out))
	for _, ps := range out {
		seen[ps.ID] = true
	}
	n.omu.Lock()
	var extra []ownerRef
	for _, ref := range n.handedOff {
		if !seen[ref.id] {
			seen[ref.id] = true
			extra = append(extra, ref)
		}
	}
	for _, ref := range n.learned {
		if !seen[ref.id] {
			seen[ref.id] = true
			extra = append(extra, ref)
		}
	}
	n.omu.Unlock()
	for _, ref := range extra {
		out = append(out, n.peerFor(ref))
	}
	return out
}

// prepareLocs extracts the shard footprint of a prepare body's demand.
func prepareLocs(demand resource.Set) []resource.Location {
	seen := make(map[resource.Location]bool)
	var locs []resource.Location
	for _, t := range demand.Terms() {
		if !seen[t.Type.Loc] {
			seen[t.Type.Loc] = true
			locs = append(locs, t.Type.Loc)
		}
	}
	return locs
}

// handlePrepareIntercept fronts the embedded server's /v1/cluster/
// prepare: requests touching handed-off locations get a 421 redirect to
// the new owner; the rest run under the handoff freeze so an export/
// drop pair never interleaves with a reservation.
func (n *Node) handlePrepareIntercept(w http.ResponseWriter, r *http.Request) {
	body, err := readBody(w, r, n.maxBody)
	if err != nil {
		httpError(w, http.StatusBadRequest, err)
		return
	}
	_, demand, err := server.DecodePrepareRequest(body)
	if err != nil {
		httpError(w, http.StatusBadRequest, err)
		return
	}
	locs := prepareLocs(demand)
	n.flowMu.RLock()
	defer n.flowMu.RUnlock()
	if red, ok := n.redirectFor(locs); ok {
		n.serveRedirect(w, red)
		return
	}
	if red, ok := n.tableRedirect(locs); ok {
		n.serveRedirect(w, red)
		return
	}
	n.delegate(w, r, body)
}

// handleFreeIntercept fronts GET /v1/cluster/free the same way.
func (n *Node) handleFreeIntercept(w http.ResponseWriter, r *http.Request) {
	var locs []resource.Location
	for _, part := range strings.Split(r.URL.Query().Get("locs"), ",") {
		if part = strings.TrimSpace(part); part != "" {
			locs = append(locs, resource.Location(part))
		}
	}
	n.flowMu.RLock()
	defer n.flowMu.RUnlock()
	if red, ok := n.redirectFor(locs); ok {
		n.serveRedirect(w, red)
		return
	}
	if red, ok := n.tableRedirect(locs); ok {
		n.serveRedirect(w, red)
		return
	}
	n.srv.ServeHTTP(w, r)
}

// handleCommitIntercept fronts /v1/cluster/commit: a key whose hold
// moved mid-2PC is committed here (the slice that stayed, if any) and
// forwarded to the new owner, so the coordinator's commit lands
// everywhere the hold now lives.
func (n *Node) handleCommitIntercept(w http.ResponseWriter, r *http.Request) {
	n.handleFinishIntercept(w, r, "commit")
}

// handleAbortIntercept fronts /v1/cluster/abort symmetrically.
func (n *Node) handleAbortIntercept(w http.ResponseWriter, r *http.Request) {
	n.handleFinishIntercept(w, r, "abort")
}

func (n *Node) handleFinishIntercept(w http.ResponseWriter, r *http.Request, verb string) {
	body, err := readBody(w, r, n.maxBody)
	if err != nil {
		httpError(w, http.StatusBadRequest, err)
		return
	}
	req, err := server.DecodeFinishRequest(body)
	if err != nil {
		httpError(w, http.StatusBadRequest, err)
		return
	}
	// The moved-check must run under the handoff freeze: a handoff
	// between reading movedKeys and taking the flow lock would export
	// the hold and leave a stale moved=false, and the commit would then
	// 404 against the already-dropped hold.
	n.flowMu.RLock()
	n.omu.Lock()
	_, moved := n.movedKeys[req.Key]
	n.omu.Unlock()
	if !moved {
		// The common path: the embedded server's handler, under the
		// handoff freeze.
		defer n.flowMu.RUnlock()
		n.delegate(w, r, body)
		return
	}
	n.flowMu.RUnlock()
	if err := n.finishMoved(r.Context(), req.Key, verb); err != nil {
		switch {
		case errors.Is(err, server.ErrUnknownHold):
			httpError(w, http.StatusNotFound, err)
		case errors.Is(err, server.ErrLeaseExpired):
			httpError(w, http.StatusGone, err)
		default:
			httpError(w, http.StatusBadGateway, err)
		}
		return
	}
	writeJSON(w, http.StatusOK, map[string]string{"key": req.Key, "outcome": verb})
}

// finishMoved applies a commit/abort locally and, when the hold's key
// was moved by a handoff, forwards it to the new owner as well — the
// slice that stayed behind and the slice that moved resolve together.
// The moved-key entry survives a forwarding failure so the
// coordinator's retry is forwarded again.
func (n *Node) finishMoved(ctx context.Context, key, verb string) error {
	// Read movedKeys only after taking the flow lock: executeHandoff
	// records moves while holding it exclusively, so a read under RLock
	// can never miss a handoff that already dropped the hold.
	n.flowMu.RLock()
	n.omu.Lock()
	ref, moved := n.movedKeys[key]
	n.omu.Unlock()
	var err error
	if verb == "commit" {
		err = n.srv.Ledger().Commit(key)
		if moved && errors.Is(err, server.ErrUnknownHold) {
			err = nil // the whole hold moved; nothing stayed behind
		}
	} else {
		err = n.srv.Ledger().Abort(key)
	}
	n.flowMu.RUnlock()
	if err != nil || !moved {
		return err
	}
	body, err := json.Marshal(server.FinishRequest{Key: key})
	if err != nil {
		return err
	}
	headers := map[string]string{headerIdempotency: key}
	if err := n.client.call(ctx, http.MethodPost, ref.url+"/v1/cluster/"+verb, body, nil, headers, n.peerFor(ref).rpc); err != nil {
		return fmt.Errorf("cluster: forwarding %s of moved hold %s to %s: %w", verb, key, ref.id, err)
	}
	// The entry stays: commit/abort are idempotent on the new owner, and
	// keeping it means a coordinator retry (even one whose first success
	// response was lost) is forwarded again instead of 404ing here. The
	// map is bounded by holds that were mid-2PC during a handoff.
	return nil
}

// delegate rewinds the body and hands the request to the embedded
// server.
func (n *Node) delegate(w http.ResponseWriter, r *http.Request, body []byte) {
	r.Body = io.NopCloser(bytes.NewReader(body))
	r.ContentLength = int64(len(body))
	n.srv.ServeHTTP(w, r)
}
