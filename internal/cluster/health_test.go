package cluster

import (
	"bytes"
	"context"
	"fmt"
	"net"
	"net/http"
	"testing"
	"time"

	"repro/internal/admission"
	"repro/internal/fault"
	"repro/internal/interval"
	"repro/internal/obs"
	"repro/internal/resource"
	"repro/internal/server"
)

// newHealthCluster boots a federation like newTestCluster but with the
// failure detector armed for automatic eviction: fast gossip, low φ
// thresholds, and any extra per-node Config tweaks from mutate.
func newHealthCluster(t testing.TB, nNodes, locsPerNode int, mutate func(i int, c *Config)) *testCluster {
	t.Helper()
	var locs []resource.Location
	for i := 0; i < nNodes*locsPerNode; i++ {
		locs = append(locs, resource.Location(fmt.Sprintf("l%d", i+1)))
	}
	var theta resource.Set
	for _, loc := range locs {
		theta.Add(resource.NewTerm(resource.FromUnits(8), resource.CPUAt(loc), interval.New(0, 10000)))
	}
	parts := PartitionLocations(locs, nNodes)
	tc := &testCluster{}
	listeners := make([]net.Listener, nNodes)
	for i := 0; i < nNodes; i++ {
		ln, err := net.Listen("tcp", "127.0.0.1:0")
		if err != nil {
			t.Fatal(err)
		}
		listeners[i] = ln
		url := "http://" + ln.Addr().String()
		tc.urls = append(tc.urls, url)
		tc.peers = append(tc.peers, Peer{ID: fmt.Sprintf("n%d", i+1), URL: url, Locations: parts[i]})
	}
	tc.httpSrvs = make([]*http.Server, nNodes)
	for i := 0; i < nNodes; i++ {
		buf := &bytes.Buffer{}
		tc.logs = append(tc.logs, buf)
		cfg := Config{
			Self:           tc.peers[i].ID,
			Peers:          tc.peers,
			Server:         server.Config{Policy: &admission.Rota{}, Theta: theta},
			LeaseTTL:       50,
			GossipInterval: 40 * time.Millisecond,
			RPCTimeout:     500 * time.Millisecond,
			RPCRetries:     1,
			SuspectPhi:     6,
			EvictPhi:       9,
			Obs:            obs.New(obs.Options{Log: buf, Node: tc.peers[i].ID}),
		}
		if mutate != nil {
			mutate(i, &cfg)
		}
		nd, err := New(cfg)
		if err != nil {
			t.Fatal(err)
		}
		tc.nodes = append(tc.nodes, nd)
		tc.httpSrvs[i] = &http.Server{Handler: nd}
		go func(i int) { _ = tc.httpSrvs[i].Serve(listeners[i]) }(i)
	}
	t.Cleanup(func() {
		ctx, cancel := context.WithTimeout(context.Background(), 10*time.Second)
		defer cancel()
		for i := range tc.nodes {
			_ = tc.nodes[i].Shutdown(ctx)
			_ = tc.httpSrvs[i].Shutdown(ctx)
		}
	})
	return tc
}

// waitDetectorWarm blocks until every node's φ detector has a baseline
// (MinSamples inter-arrival observations) for every other node. Silence
// before that is indistinguishable from a peer that never spoke, so
// tests must not stage failures against a cold detector.
func waitDetectorWarm(t testing.TB, nodes []*Node, ids []string, timeout time.Duration) {
	t.Helper()
	deadline := time.Now().Add(timeout)
	for {
		warm := true
		for i, nd := range nodes {
			samples := make(map[string]int)
			for _, ph := range nd.Stats().Health.Peers {
				samples[ph.Peer] = ph.Samples
			}
			for j, id := range ids {
				if j != i && samples[id] < 3 {
					warm = false
				}
			}
		}
		if warm {
			return
		}
		if time.Now().After(deadline) {
			t.Fatalf("failure detectors never warmed within %s", timeout)
		}
		time.Sleep(20 * time.Millisecond)
	}
}

// kill hard-stops node i: listener closed, gossip loop drained — the
// silence a crashed process would leave.
func (tc *testCluster) kill(t testing.TB, i int) {
	t.Helper()
	tc.httpSrvs[i].Close()
	ctx, cancel := context.WithTimeout(context.Background(), 10*time.Second)
	defer cancel()
	if err := tc.nodes[i].Shutdown(ctx); err != nil {
		t.Fatalf("killing %s: %v", tc.peers[i].ID, err)
	}
}

// waitGone blocks until the victim is out of every listed node's table.
func waitGone(t testing.TB, nodes []*Node, victim string, timeout time.Duration) {
	t.Helper()
	deadline := time.Now().Add(timeout)
	for {
		gone := true
		for _, nd := range nodes {
			if _, ok := nd.Table().Member(victim); ok {
				gone = false
				break
			}
		}
		if gone {
			return
		}
		if time.Now().After(deadline) {
			for _, nd := range nodes {
				st := nd.Stats()
				t.Logf("%s: epoch=%d suspected=%d evictions=%d health=%+v",
					st.Node, st.Cluster.MembershipEpoch, st.Cluster.SuspectedPeers, st.Cluster.AutoEvictions, st.Health.Peers)
			}
			t.Fatalf("%s never auto-evicted within %s", victim, timeout)
		}
		time.Sleep(20 * time.Millisecond)
	}
}

// TestAutoEvictionOnSilence: killing a node must lead, with no operator
// action, to quorum agreement and a stewarded force-leave; the victim's
// committed reservation survives on the promoted standby.
func TestAutoEvictionOnSilence(t *testing.T) {
	tc := newHealthCluster(t, 3, 2, nil)
	victim := 2
	vloc := tc.peers[victim].Locations[0]

	// A committed reservation on the victim, shipped to its standby.
	job := pinnedJob(t, "evict-seed", vloc, 5000)
	status, body := post(t, tc.urls[0]+"/v1/admit", job, nil)
	if status != http.StatusOK {
		t.Fatalf("seeding victim: %d: %s", status, body)
	}
	standbyID := tc.nodes[0].Table().StandbyOf(vloc)
	var standby *Node
	for i, p := range tc.peers {
		if p.ID == standbyID {
			standby = tc.nodes[i]
		}
	}
	if standby == nil || standbyID == tc.peers[victim].ID {
		t.Fatalf("standby of %s is %q; want a survivor", vloc, standbyID)
	}
	waitFor(t, 5*time.Second, "standby shadow warm", func() bool {
		cms, _, ok := standby.ShadowFor(vloc)
		return ok && cms >= 1
	})

	waitDetectorWarm(t, tc.nodes, []string{"n1", "n2", "n3"}, 10*time.Second)
	tc.kill(t, victim)
	survivors := []*Node{tc.nodes[0], tc.nodes[1]}
	waitGone(t, survivors, tc.peers[victim].ID, 30*time.Second)

	// Ownership moved to the standby; the seed survived.
	for _, nd := range survivors {
		owner, ok := nd.Table().OwnerOf(vloc)
		if !ok || owner == tc.peers[victim].ID {
			t.Fatalf("%s still owned by the dead node (%q, ok=%v)", vloc, owner, ok)
		}
	}
	if _, ok := standby.Server().Ledger().Commitment("evict-seed"); !ok {
		t.Fatal("committed reservation lost in automatic failover")
	}
	var evictions uint64
	for _, nd := range survivors {
		evictions += nd.Stats().Cluster.AutoEvictions
	}
	if evictions != 1 {
		t.Fatalf("auto evictions = %d, want exactly 1 (deterministic steward election)", evictions)
	}
	for _, nd := range survivors {
		if err := nd.Server().Ledger().Audit(); err != nil {
			t.Fatal(err)
		}
	}
}

// TestEvenSplitNoMutualEviction: the split-brain shape the quorum rule
// must refuse. A 2|2 partition of a 4-node cluster gives each half as
// many accusers (2) as it has survivors — a majority of the survivors,
// which an earlier survivors-based quorum would have accepted on BOTH
// sides, producing two live clusters admitting against the same
// capacity. Against the full-roster quorum (4/2+1 = 3) the tie must
// stall: both halves hold the far side dead yet evict nobody, and after
// the heal the cluster is still one 4-member table with zero evictions
// and zero fence-triggered rejoins anywhere.
func TestEvenSplitNoMutualEviction(t *testing.T) {
	fnet := fault.NewNetwork(1)
	tc := newHealthCluster(t, 4, 1, func(i int, c *Config) {
		if i == 0 {
			for _, p := range c.Peers {
				fnet.Register(p.ID, p.URL)
			}
		}
		c.Transport = fnet.Transport(c.Self, nil)
	})
	ids := []string{"n1", "n2", "n3", "n4"}
	waitDetectorWarm(t, tc.nodes, ids, 10*time.Second)

	fnet.Partition([]string{"n3", "n4"}) // {n1,n2} | {n3,n4}

	// Each side must actually reach Dead verdicts on the far side — the
	// test only proves the quorum rule holds if detection fired.
	far := map[int][]string{0: {"n3", "n4"}, 1: {"n3", "n4"}, 2: {"n1", "n2"}, 3: {"n1", "n2"}}
	for i, nd := range tc.nodes {
		nd, want := nd, far[i]
		waitFor(t, 30*time.Second, fmt.Sprintf("%s holds the far side dead", tc.peers[i].ID), func() bool {
			dead := make(map[string]bool)
			for _, ph := range nd.Stats().Health.Peers {
				if ph.State == "dead" {
					dead[ph.Peer] = true
				}
			}
			return dead[want[0]] && dead[want[1]]
		})
	}

	// Many health ticks with both sides stuck at 2 accusers against a
	// quorum of 3: nobody may be evicted, in either direction.
	time.Sleep(1 * time.Second)
	for i, nd := range tc.nodes {
		if got := len(nd.Table().Members); got != 4 {
			t.Fatalf("%s: roster shrank to %d members during an even split — mutual eviction", tc.peers[i].ID, got)
		}
		if ev := nd.Stats().Cluster.AutoEvictions; ev != 0 {
			t.Fatalf("%s stewarded %d auto-evictions during an even split, want 0", tc.peers[i].ID, ev)
		}
	}

	fnet.Heal()
	waitFor(t, 30*time.Second, "cluster reunites with no suspects", func() bool {
		for _, nd := range tc.nodes {
			if nd.Stats().Cluster.SuspectedPeers != 0 || len(nd.Table().Members) != 4 {
				return false
			}
		}
		return true
	})
	for i, nd := range tc.nodes {
		st := nd.Stats()
		if st.Cluster.AutoEvictions != 0 || st.Cluster.Rejoins != 0 {
			t.Fatalf("%s: evictions=%d rejoins=%d after heal, want 0/0 (a tied split must stall, not fail over)",
				tc.peers[i].ID, st.Cluster.AutoEvictions, st.Cluster.Rejoins)
		}
		if err := nd.Server().Ledger().Audit(); err != nil {
			t.Fatal(err)
		}
	}
}

// waitFor polls cond until true or the timeout trips.
func waitFor(t testing.TB, timeout time.Duration, what string, cond func() bool) {
	t.Helper()
	deadline := time.Now().Add(timeout)
	for !cond() {
		if time.Now().After(deadline) {
			t.Fatalf("%s: never happened within %s", what, timeout)
		}
		time.Sleep(10 * time.Millisecond)
	}
}
