package cluster

import (
	"bytes"
	"context"
	"encoding/json"
	"fmt"
	"io"
	"net"
	"net/http"
	"sync"
	"sync/atomic"
	"testing"
	"time"

	"repro/internal/admission"
	"repro/internal/compute"
	"repro/internal/cost"
	"repro/internal/interval"
	"repro/internal/membership"
	"repro/internal/obs"
	"repro/internal/obs/assure"
	"repro/internal/obs/span"
	"repro/internal/resource"
	"repro/internal/server"
	"repro/internal/workload"
)

// testCluster is an in-process loopback federation serving over real
// HTTP listeners. Each node's structured event log lands in its logs
// buffer; read them only while no traffic is in flight.
type testCluster struct {
	peers    []Peer
	nodes    []*Node
	urls     []string
	logs     []*bytes.Buffer
	spans    []*span.Store
	httpSrvs []*http.Server
}

// newTestCluster boots nNodes nodes owning locsPerNode cpu locations
// each (rate units/tick over (0, horizon)), with the given lease TTL and
// fast gossip.
func newTestCluster(t testing.TB, nNodes, locsPerNode int, rate int64, horizon, ttl interval.Time) *testCluster {
	t.Helper()
	var locs []resource.Location
	for i := 0; i < nNodes*locsPerNode; i++ {
		locs = append(locs, resource.Location(fmt.Sprintf("l%d", i+1)))
	}
	var theta resource.Set
	for _, loc := range locs {
		theta.Add(resource.NewTerm(resource.FromUnits(rate), resource.CPUAt(loc), interval.New(0, horizon)))
	}

	parts := PartitionLocations(locs, nNodes)
	tc := &testCluster{}
	listeners := make([]net.Listener, nNodes)
	for i := 0; i < nNodes; i++ {
		ln, err := net.Listen("tcp", "127.0.0.1:0")
		if err != nil {
			t.Fatal(err)
		}
		listeners[i] = ln
		url := "http://" + ln.Addr().String()
		tc.urls = append(tc.urls, url)
		tc.peers = append(tc.peers, Peer{ID: fmt.Sprintf("n%d", i+1), URL: url, Locations: parts[i]})
	}
	tc.httpSrvs = make([]*http.Server, nNodes)
	for i := 0; i < nNodes; i++ {
		buf := &bytes.Buffer{}
		tc.logs = append(tc.logs, buf)
		tc.spans = append(tc.spans, span.NewStore(span.DefaultCapacity, tc.peers[i].ID))
		nd, err := New(Config{
			Self:           tc.peers[i].ID,
			Peers:          tc.peers,
			Server:         server.Config{Policy: &admission.Rota{}, Theta: theta, Assure: assure.New(tc.peers[i].ID)},
			LeaseTTL:       ttl,
			GossipInterval: 50 * time.Millisecond,
			Obs:            obs.New(obs.Options{Log: buf, Node: tc.peers[i].ID}),
			Spans:          tc.spans[i],
		})
		if err != nil {
			t.Fatal(err)
		}
		tc.nodes = append(tc.nodes, nd)
		tc.httpSrvs[i] = &http.Server{Handler: nd}
		go func(i int) { _ = tc.httpSrvs[i].Serve(listeners[i]) }(i)
	}
	t.Cleanup(func() {
		ctx, cancel := context.WithTimeout(context.Background(), 10*time.Second)
		defer cancel()
		for i := range tc.nodes {
			_ = tc.nodes[i].Shutdown(ctx)
			_ = tc.httpSrvs[i].Shutdown(ctx)
		}
	})
	return tc
}

// spanningJob builds a two-actor job evaluating at two locations.
func spanningJob(t testing.TB, name string, locA, locB resource.Location, deadline interval.Time) workload.Job {
	t.Helper()
	model := cost.Paper()
	a1 := compute.ActorName(name + ".a1")
	a2 := compute.ActorName(name + ".a2")
	c1, err := cost.Realize(model, a1, compute.Evaluate(a1, locA, 1))
	if err != nil {
		t.Fatal(err)
	}
	c2, err := cost.Realize(model, a2, compute.Evaluate(a2, locB, 1))
	if err != nil {
		t.Fatal(err)
	}
	dist, err := compute.NewDistributed(name, 0, deadline, c1, c2)
	if err != nil {
		t.Fatal(err)
	}
	return workload.Job{Dist: dist}
}

// pinnedJob builds a one-actor job confined to one location.
func pinnedJob(t testing.TB, name string, loc resource.Location, deadline interval.Time) workload.Job {
	t.Helper()
	actor := compute.ActorName(name + ".a")
	c, err := cost.Realize(cost.Paper(), actor, compute.Evaluate(actor, loc, 1))
	if err != nil {
		t.Fatal(err)
	}
	dist, err := compute.NewDistributed(name, 0, deadline, c)
	if err != nil {
		t.Fatal(err)
	}
	return workload.Job{Dist: dist}
}

// post sends a JSON body and returns (status, response bytes).
func post(t testing.TB, url string, v any, headers map[string]string) (int, []byte) {
	t.Helper()
	body, err := json.Marshal(v)
	if err != nil {
		t.Fatal(err)
	}
	req, err := http.NewRequest(http.MethodPost, url, bytes.NewReader(body))
	if err != nil {
		t.Fatal(err)
	}
	req.Header.Set("Content-Type", "application/json")
	for k, val := range headers {
		req.Header.Set(k, val)
	}
	resp, err := http.DefaultClient.Do(req)
	if err != nil {
		t.Fatalf("POST %s: %v", url, err)
	}
	defer resp.Body.Close()
	data, err := io.ReadAll(io.LimitReader(resp.Body, 1<<20))
	if err != nil {
		t.Fatal(err)
	}
	return resp.StatusCode, data
}

func admitVerdict(t testing.TB, url string, job workload.Job) (int, server.AdmitResponse) {
	t.Helper()
	status, data := post(t, url+"/v1/admit", job, nil)
	var out server.AdmitResponse
	if status == http.StatusOK {
		if err := json.Unmarshal(data, &out); err != nil {
			t.Fatalf("unparsable admit response %s: %v", data, err)
		}
	}
	return status, out
}

func auditAll(t testing.TB, tc *testCluster, when string) {
	t.Helper()
	for i, nd := range tc.nodes {
		if err := nd.Server().Ledger().Audit(); err != nil {
			t.Fatalf("%s: node %s audit: %v", when, tc.peers[i].ID, err)
		}
	}
}

// TestClusterFederatedAdmissionUnderCrash is the crash-safety
// integration test: a 3-node cluster takes concurrent single- and
// multi-location admissions while a coordinator crash is injected
// between prepare and commit of a cross-node job. Afterwards every
// node's no-overcommitment audit must pass, and once the clock passes
// the lease TTL the orphaned holds must be swept on every node.
func TestClusterFederatedAdmissionUnderCrash(t *testing.T) {
	const ttl = interval.Time(50)
	tc := newTestCluster(t, 3, 2, 4, 100000, ttl)

	// Inject the coordinator crash mid-protocol on n1.
	tc.nodes[0].InjectCrashBeforeCommit()
	crash := spanningJob(t, "crash-probe", tc.peers[0].Locations[0], tc.peers[1].Locations[0], 100000)
	status, _ := admitVerdict(t, tc.urls[0], crash)
	if status != http.StatusInternalServerError {
		t.Fatalf("crash probe returned %d, want 500", status)
	}
	orphans := 0
	for _, nd := range tc.nodes {
		orphans += nd.Server().Ledger().NumHolds()
	}
	if orphans < 2 {
		t.Fatalf("crash left %d orphaned holds, want >= 2 (both participants)", orphans)
	}

	// Concurrent mixed load against all three nodes.
	const clients, perClient = 8, 30
	var admitted, rejected atomic.Int64
	var wg sync.WaitGroup
	allLocs := []resource.Location{}
	for _, p := range tc.peers {
		allLocs = append(allLocs, p.Locations...)
	}
	for c := 0; c < clients; c++ {
		wg.Add(1)
		go func(c int) {
			defer wg.Done()
			for i := 0; i < perClient; i++ {
				name := fmt.Sprintf("job-%d-%d", c, i)
				var job workload.Job
				switch i % 3 {
				case 0: // spans two owners: coordinated
					job = spanningJob(t, name, allLocs[i%len(allLocs)], allLocs[(i+3)%len(allLocs)], 100000)
				default: // single owner: local or forwarded
					job = pinnedJob(t, name, allLocs[(c+i)%len(allLocs)], 100000)
				}
				status, verdict := admitVerdict(t, tc.urls[(c+i)%len(tc.urls)], job)
				if status != http.StatusOK {
					t.Errorf("admit %s returned %d", name, status)
					return
				}
				if verdict.Admit {
					admitted.Add(1)
				} else {
					rejected.Add(1)
				}
			}
		}(c)
	}
	wg.Wait()
	if t.Failed() {
		return
	}
	if admitted.Load() == 0 {
		t.Fatal("nothing admitted")
	}
	auditAll(t, tc, "after load")

	var coords, forwarded uint64
	for _, nd := range tc.nodes {
		st := nd.Stats()
		coords += st.Cluster.Coordinations
		forwarded += st.Cluster.Forwarded
	}
	if coords == 0 || forwarded == 0 {
		t.Fatalf("load exercised no federation paths: coordinations=%d forwarded=%d", coords, forwarded)
	}

	// Advance every ledger past the TTL through the fan-out endpoint;
	// the sweep must reclaim the crash's holds everywhere.
	status, data := post(t, tc.urls[0]+"/v1/cluster/advance", map[string]any{"now": ttl * 2}, nil)
	if status != http.StatusOK {
		t.Fatalf("cluster advance returned %d: %s", status, data)
	}
	swept := uint64(0)
	for i, nd := range tc.nodes {
		if holds := nd.Server().Ledger().NumHolds(); holds != 0 {
			t.Fatalf("node %s has %d holds after sweep — a lease outlived its TTL", tc.peers[i].ID, holds)
		}
		swept += nd.Server().Ledger().TwoPhase().LeasesExpired
	}
	if swept < 2 {
		t.Fatalf("sweeps reclaimed %d leases, want >= 2", swept)
	}
	auditAll(t, tc, "after sweep")
}

// TestClusterForwardingAndMisroute checks single-owner routing: a job
// pinned to another node's location is forwarded to its owner and
// admitted there, while a forwarded request landing on a non-owner is
// answered with a 421 naming the true owner (the sender follows the
// redirect instead of the job bouncing server-side).
func TestClusterForwardingAndMisroute(t *testing.T) {
	tc := newTestCluster(t, 3, 1, 4, 1000, 50)
	job := pinnedJob(t, "fwd-1", tc.peers[1].Locations[0], 1000)
	status, verdict := admitVerdict(t, tc.urls[0], job)
	if status != http.StatusOK || !verdict.Admit {
		t.Fatalf("forwarded admit: status %d, verdict %+v", status, verdict)
	}
	if got := tc.nodes[0].Stats().Cluster.Forwarded; got != 1 {
		t.Fatalf("n1 forwarded = %d, want 1", got)
	}
	// The commitment lives on the owner, not the router.
	if tc.nodes[1].Server().Ledger().NumCommitments() != 1 {
		t.Fatal("owner has no commitment")
	}
	if tc.nodes[0].Server().Ledger().NumCommitments() != 0 {
		t.Fatal("router kept a commitment")
	}

	// A forwarded request whose footprint the receiver does not own is
	// answered with a redirect naming the true owner from the table.
	bad := pinnedJob(t, "fwd-2", tc.peers[2].Locations[0], 1000)
	status, data := post(t, tc.urls[0]+"/v1/admit", bad, map[string]string{headerForwarded: "n9"})
	if status != http.StatusMisdirectedRequest {
		t.Fatalf("misrouted admit returned %d, want 421", status)
	}
	var red membership.RedirectResponse
	if err := json.Unmarshal(data, &red); err != nil {
		t.Fatalf("decoding redirect: %v", err)
	}
	if red.OwnerID != tc.peers[2].ID || red.OwnerURL != tc.urls[2] {
		t.Fatalf("redirect names %s at %s, want %s at %s", red.OwnerID, red.OwnerURL, tc.peers[2].ID, tc.urls[2])
	}
	if got := tc.nodes[0].Stats().Cluster.RedirectsServed; got != 1 {
		t.Fatalf("n1 redirects served = %d, want 1", got)
	}
	// A job naming a location nobody owns is rejected with a clear error.
	ghost := pinnedJob(t, "fwd-3", "l99", 1000)
	status, data = post(t, tc.urls[0]+"/v1/admit", ghost, nil)
	if status != http.StatusUnprocessableEntity || !bytes.Contains(data, []byte("no node owns")) {
		t.Fatalf("unowned-location admit: status %d body %s", status, data)
	}

	// Cluster-wide release finds the forwarded job on its owner.
	status, _ = post(t, tc.urls[2]+"/v1/release", map[string]string{"name": "fwd-1"}, nil)
	if status != http.StatusOK {
		t.Fatalf("cluster release returned %d", status)
	}
	if tc.nodes[1].Server().Ledger().NumCommitments() != 0 {
		t.Fatal("release did not reach the owner")
	}
	auditAll(t, tc, "after release")
}

// TestClusterMigrate re-homes a committed job: prepare/commit on the
// target through the standard two-phase path, then release at the
// source. The remaining demand must end up owned by the target.
func TestClusterMigrate(t *testing.T) {
	tc := newTestCluster(t, 3, 1, 4, 1000, 50)
	job := pinnedJob(t, "mig-1", tc.peers[1].Locations[0], 1000)
	status, verdict := admitVerdict(t, tc.urls[1], job)
	if status != http.StatusOK || !verdict.Admit {
		t.Fatalf("admit: status %d, verdict %+v", status, verdict)
	}

	status, data := post(t, tc.urls[1]+"/v1/cluster/migrate", MigrateRequest{Name: "mig-1", Target: "n3"}, nil)
	if status != http.StatusOK {
		t.Fatalf("migrate returned %d: %s", status, data)
	}
	if tc.nodes[1].Server().Ledger().NumCommitments() != 0 {
		t.Fatal("source still holds the commitment")
	}
	if tc.nodes[2].Server().Ledger().NumCommitments() != 1 {
		t.Fatal("target did not receive the commitment")
	}
	if got := tc.nodes[1].Stats().Cluster.Migrations; got != 1 {
		t.Fatalf("migrations = %d, want 1", got)
	}
	demand, _, err := tc.nodes[2].Server().Ledger().RemainingDemand("mig-1")
	if err != nil {
		t.Fatal(err)
	}
	for _, term := range demand.Terms() {
		if term.Type.Loc != tc.peers[2].Locations[0] {
			t.Fatalf("migrated demand still at %s: %s", term.Type.Loc, demand.Compact())
		}
	}
	auditAll(t, tc, "after migrate")

	// Error surface: unknown job, unknown target, self target.
	if status, _ := post(t, tc.urls[1]+"/v1/cluster/migrate", MigrateRequest{Name: "ghost", Target: "n3"}, nil); status != http.StatusNotFound {
		t.Fatalf("unknown job: %d, want 404", status)
	}
	if status, _ := post(t, tc.urls[2]+"/v1/cluster/migrate", MigrateRequest{Name: "mig-1", Target: "n9"}, nil); status != http.StatusNotFound {
		t.Fatalf("unknown target: %d, want 404", status)
	}
	if status, _ := post(t, tc.urls[2]+"/v1/cluster/migrate", MigrateRequest{Name: "mig-1", Target: "n3"}, nil); status != http.StatusBadRequest {
		t.Fatalf("self target: %d, want 400", status)
	}

	// The migrated job releases cluster-wide like any other.
	if status, _ := post(t, tc.urls[0]+"/v1/release", map[string]string{"name": "mig-1"}, nil); status != http.StatusOK {
		t.Fatalf("release returned %d", status)
	}
	auditAll(t, tc, "after release")
}

// TestClusterGossip waits for the periodic summaries to propagate and
// checks they land in the peer table.
func TestClusterGossip(t *testing.T) {
	tc := newTestCluster(t, 2, 1, 4, 1000, 50)
	deadline := time.Now().Add(5 * time.Second)
	for {
		heard := 0
		for _, st := range tc.nodes[0].Stats().Peers {
			if !st.Self && st.LastHeardMS >= 0 {
				heard++
			}
		}
		if heard == 1 {
			return
		}
		if time.Now().After(deadline) {
			t.Fatal("no gossip heard from peer within 5s")
		}
		time.Sleep(20 * time.Millisecond)
	}
}
