package cluster

import (
	"bytes"
	"context"
	"encoding/json"
	"errors"
	"fmt"
	"io"
	"net/http"
	"sort"
	"strings"
	"sync"
	"sync/atomic"
	"time"

	"repro/internal/admission"
	"repro/internal/compute"
	"repro/internal/core"
	"repro/internal/health"
	"repro/internal/interval"
	"repro/internal/membership"
	"repro/internal/metrics"
	"repro/internal/obs"
	"repro/internal/obs/span"
	"repro/internal/resource"
	"repro/internal/server"
	"repro/internal/workload"
)

// Config parameterizes one cluster node.
type Config struct {
	// Self is this node's ID; it must appear in Peers.
	Self string
	// Peers is the seed membership, including self. Location ownership
	// must be disjoint (ValidatePeers). It seeds the epoch-1 membership
	// table; joins and leaves move it from there.
	Peers []Peer
	// Join starts this node as an unassigned joiner: Peers must name
	// only self (its URL is what other members will dial), the node owns
	// no locations, and ownership arrives via JoinCluster.
	Join bool
	// Server configures the embedded rotad core. Theta may be the whole
	// cluster's availability: it is filtered to this node's locations,
	// and Owned is overwritten with them.
	Server server.Config
	// LeaseTTL is how long a prepared hold lives on the owner's ledger
	// clock before the expiry sweep reclaims it; default 50 ticks.
	LeaseTTL interval.Time
	// GossipInterval paces the Θ/reserved summary broadcast; default 1s,
	// negative disables.
	GossipInterval time.Duration
	// RPCTimeout bounds each peer RPC attempt; default 2s.
	RPCTimeout time.Duration
	// RPCRetries is how many times a failed peer RPC is retried with
	// jittered backoff; default 2.
	RPCRetries int
	// RPCBackoffBase is the first retry's backoff (doubling per
	// attempt, ±50% jitter); default 25ms.
	RPCBackoffBase time.Duration
	// RPCBackoffCap caps the exponential backoff; default 400ms.
	RPCBackoffCap time.Duration
	// Transport, when set, wraps every outbound peer RPC — the
	// fault-injection hook (internal/fault). Nil uses the process
	// default transport.
	Transport http.RoundTripper
	// SuspectPhi is the φ-accrual level at which a peer is suspected
	// (excluded from steward election, advertised in gossip); 0 keeps
	// the detector's default (8).
	SuspectPhi float64
	// EvictPhi is the φ level at which a peer is locally declared dead.
	// A positive value ALSO enables automatic failover: when a quorum
	// of survivors agrees, the deterministic runner-up steward
	// force-leaves the victim with no operator involvement. 0 disables
	// auto-eviction (the detector still runs for the φ gauge).
	EvictPhi float64
	// StewardWait bounds how long a join/leave queues behind another
	// membership change on the same steward before failing with a clear
	// error; default 10s.
	StewardWait time.Duration
	// Obs is the observability sink shared with the embedded server:
	// structured event logging and trace correlation across the
	// federation protocol. Nil disables event logging.
	Obs *obs.Observer
	// Spans is the span store shared with the embedded server: one node,
	// one ring buffer, whichever layer recorded the span. Nil disables
	// span tracing.
	Spans *span.Store
}

// peerState is one peer plus everything this node has learned about it.
type peerState struct {
	Peer
	isSelf bool
	rpc    *metrics.RPCStats

	mu              sync.Mutex
	lastHeard       time.Time
	lastNow         interval.Time
	lastHolds       int
	lastLedgerEpoch uint64
}

// Node is one member of a rotad federation: an embedded rotad core that
// owns a subset of locations, plus the peer layer that routes and
// coordinates admissions across the cluster. Create with New, serve via
// the http.Handler interface, stop with Shutdown.
type Node struct {
	cfg    Config
	self   *peerState
	srv    *server.Server
	policy admission.Policy
	client *rpcClient
	mux    *http.ServeMux
	obs    *obs.Observer
	spans  *span.Store

	// reg publishes the epoch-versioned ownership table; pmu guards the
	// peer-state list derived from it (plus transient peers minted from
	// redirects before their table arrived).
	reg   *membership.Registry
	pmu   sync.RWMutex
	peers []*peerState // membership order, including self
	byID  map[string]*peerState

	// mmu serializes membership changes this node stewards: a
	// 1-slot semaphore so a second change queues behind the first with
	// a bounded wait (acquireSteward) instead of blocking forever.
	mmu         chan struct{}
	stewardWait time.Duration

	// flowMu is the handoff freeze: every path that mutates or reads
	// ledger flow state holds it shared, executeHandoff holds it
	// exclusive across export→install→drop so no reservation can land in
	// the gap and be lost.
	flowMu sync.RWMutex

	// omu guards the routing overlays that bridge a handoff and the
	// next table broadcast (see membership.go). pendingOwned maps each
	// installed-but-not-yet-granted location to the table epoch its
	// install belongs to, so a final table that assigns it elsewhere
	// (a rolled-back plan) clears the overlay AND the installed state.
	omu          sync.Mutex
	pendingOwned map[resource.Location]uint64
	handedOff    map[resource.Location]ownerRef
	learned      map[resource.Location]ownerRef
	movedKeys    map[string]ownerRef

	// smu guards the warm-standby shadows gossip ships here.
	smu         sync.Mutex
	shadows     map[resource.Location]server.LocationExport
	lastShipped uint64 // ledger epoch at the last shadow shipment (gossip goroutine only)

	// Failure detection and self-healing (see health.go). hmu guards
	// the accusation ledger, the per-victim eviction guards, and the
	// suspect snapshot gossiped to peers; imu guards the intent journal
	// (own open choreography plus the last open intent heard from each
	// peer steward).
	detector    *health.Detector
	autoEvict   bool
	gossipEvery time.Duration
	hmu         sync.Mutex
	accusals    map[string]map[string]time.Time // victim → accuser → heard-at
	evicting    map[string]bool
	suspects    []string
	imu         sync.Mutex
	intents     map[string]*membership.Intent // steward → open intent
	rejoining   atomic.Bool

	httpStats map[string]*obs.EndpointStats

	maxBody  int64
	leaseTTL interval.Time
	seq      atomic.Uint64

	shutdownOnce sync.Once
	shutdownCh   chan struct{}
	coordWg      sync.WaitGroup
	gossipWg     sync.WaitGroup

	forwarded     atomic.Uint64
	misrouted     atomic.Uint64
	coordinations atomic.Uint64
	coordAdmitted atomic.Uint64
	coordRejected atomic.Uint64
	coordFailed   atomic.Uint64
	crashes       atomic.Uint64
	migrations    atomic.Uint64
	releases      atomic.Uint64
	fanouts       atomic.Uint64
	coordLatency  *metrics.Histogram

	joins             atomic.Uint64
	leaves            atomic.Uint64
	handoffs          atomic.Uint64
	promotions        atomic.Uint64
	redirectsServed   atomic.Uint64
	redirectsFollowed atomic.Uint64
	tableApplies      atomic.Uint64
	shadowShips       atomic.Uint64
	shadowMisses      atomic.Uint64

	autoEvictions atomic.Uint64
	rejoins       atomic.Uint64
	intentRepairs atomic.Uint64
	fencedGossip  atomic.Uint64
	suspectedNow  atomic.Uint64 // gauge: peers currently suspect or worse

	// Test instrumentation (see InjectCrashBeforeCommit / SetGate).
	crashNext atomic.Bool
	gate      func(stage, key string)
}

// New builds and starts a cluster node. The embedded server's Theta is
// filtered to this node's owned locations, so every node may be handed
// the same cluster-wide availability.
func New(cfg Config) (*Node, error) {
	if cfg.Join {
		if len(cfg.Peers) != 1 || cfg.Peers[0].ID != cfg.Self || cfg.Peers[0].URL == "" {
			return nil, errors.New("cluster: join mode needs exactly one peer entry: self with its URL")
		}
		if len(cfg.Peers[0].Locations) != 0 {
			return nil, errors.New("cluster: a joiner owns no locations until the steward assigns them")
		}
	} else if err := ValidatePeers(cfg.Peers); err != nil {
		return nil, err
	}
	dopts := health.Defaults()
	if cfg.SuspectPhi > 0 {
		dopts.SuspectPhi = cfg.SuspectPhi
	}
	if cfg.EvictPhi > 0 {
		dopts.EvictPhi = cfg.EvictPhi
	}
	if cfg.GossipInterval > 0 {
		// Gossip receipt is the heartbeat, so the first-heartbeat
		// estimate for a roster member we have never heard from is a
		// wide multiple of the gossip cadence.
		dopts.BootstrapInterval = 5 * cfg.GossipInterval
	}
	n := &Node{
		cfg:    cfg,
		byID:   make(map[string]*peerState),
		policy: &admission.Rota{},
		client: newRPCClient(rpcOptions{
			timeout:     cfg.RPCTimeout,
			retries:     pickRetries(cfg.RPCRetries),
			backoffBase: cfg.RPCBackoffBase,
			backoffCap:  cfg.RPCBackoffCap,
			transport:   cfg.Transport,
		}, cfg.Obs, cfg.Spans),
		mmu:          make(chan struct{}, 1),
		stewardWait:  cfg.StewardWait,
		shutdownCh:   make(chan struct{}),
		leaseTTL:     cfg.LeaseTTL,
		coordLatency: metrics.NewHistogram(),
		obs:          cfg.Obs,
		spans:        cfg.Spans,
		httpStats:    make(map[string]*obs.EndpointStats),
		pendingOwned: make(map[resource.Location]uint64),
		handedOff:    make(map[resource.Location]ownerRef),
		learned:      make(map[resource.Location]ownerRef),
		movedKeys:    make(map[string]ownerRef),
		shadows:      make(map[resource.Location]server.LocationExport),
		detector:     health.NewDetector(dopts),
		autoEvict:    cfg.EvictPhi > 0,
		accusals:     make(map[string]map[string]time.Time),
		evicting:     make(map[string]bool),
		intents:      make(map[string]*membership.Intent),
	}
	if n.leaseTTL <= 0 {
		n.leaseTTL = 50
	}
	if n.stewardWait <= 0 {
		n.stewardWait = 10 * time.Second
	}
	members := make([]membership.Member, 0, len(cfg.Peers))
	seedOwners := make(map[resource.Location]string)
	for i := range cfg.Peers {
		ps := &peerState{Peer: cfg.Peers[i], rpc: metrics.NewRPCStats()}
		ps.isSelf = ps.ID == cfg.Self
		if ps.isSelf {
			n.self = ps
		}
		n.peers = append(n.peers, ps)
		n.byID[ps.ID] = ps
		members = append(members, membership.Member{ID: ps.ID, URL: ps.URL})
		for _, loc := range ps.Locations {
			seedOwners[loc] = ps.ID
		}
	}
	if n.self == nil {
		return nil, fmt.Errorf("cluster: self %q not in peer table", cfg.Self)
	}
	seed := membership.NewTable(members, seedOwners)
	if err := seed.Validate(); err != nil {
		return nil, err
	}
	n.reg = membership.NewRegistry(seed)

	scfg := cfg.Server
	scfg.Owned = seed.Locations(n.self.ID)
	if scfg.Owned == nil {
		scfg.Owned = []resource.Location{} // joiner: own nothing, not everything
	}
	scfg.Theta = filterTheta(scfg.Theta, seed, n.self.ID)
	scfg.Obs = cfg.Obs
	scfg.Spans = cfg.Spans
	srv, err := server.New(scfg)
	if err != nil {
		return nil, err
	}
	n.srv = srv
	n.maxBody = 1 << 20
	// Standing watches evaluate through the cluster so their verdicts
	// stay correct when footprint locations change owners.
	srv.SetWatchEvaluator(n.clusterEval)

	n.mux = http.NewServeMux()
	n.route("POST /v1/admit", "admit", n.handleAdmit)
	n.route("POST /v1/release", "release", n.handleRelease)
	n.route("GET /v1/query", "query", n.handleQuery)
	n.route("POST /v1/query", "query.eval", n.handleQueryPost)
	n.route("GET /v1/stats", "stats", n.handleStats)
	n.route("GET /v1/assure", "assure", n.handleAssure)
	n.route("POST /v1/cluster/gossip", "cluster.gossip", n.handleGossip)
	n.route("GET /v1/cluster/peers", "cluster.peers", n.handlePeers)
	n.route("POST /v1/cluster/migrate", "cluster.migrate", n.handleMigrate)
	n.route("POST /v1/cluster/advance", "cluster.advance", n.handleClusterAdvance)
	n.route("POST /v1/cluster/join", "cluster.join", n.handleJoin)
	n.route("POST /v1/cluster/leave", "cluster.leave", n.handleLeave)
	n.route("POST /v1/cluster/handoff", "cluster.handoff", n.handleHandoff)
	n.route("POST /v1/cluster/install", "cluster.install", n.handleInstall)
	n.route("POST /v1/cluster/promote", "cluster.promote", n.handlePromote)
	n.route("POST /v1/cluster/shadow", "cluster.shadow", n.handleShadow)
	n.route("GET /v1/cluster/owned", "cluster.owned", n.handleOwned)
	n.route("GET /v1/cluster/table", "cluster.table", n.handleTableGet)
	n.route("POST /v1/cluster/table", "cluster.table.apply", n.handleTablePost)
	n.route("POST /v1/cluster/prepare", "cluster.prepare", n.handlePrepareIntercept)
	n.route("GET /v1/cluster/free", "cluster.free", n.handleFreeIntercept)
	n.route("POST /v1/cluster/commit", "cluster.commit", n.handleCommitIntercept)
	n.route("POST /v1/cluster/abort", "cluster.abort", n.handleAbortIntercept)
	n.mux.HandleFunc("GET /metrics", obs.Handler(n))
	n.mux.Handle("/", srv)
	// Flight-recorder snapshots on a cluster node carry the membership
	// digest of the instant the trigger fired.
	if rec := srv.FlightRecorder(); rec != nil {
		rec.SetState(n.FlightState)
	}

	interval := cfg.GossipInterval
	if interval == 0 {
		interval = time.Second
	}
	n.gossipEvery = interval
	if interval > 0 {
		n.gossipWg.Add(1)
		go n.gossipLoop(interval)
	}
	return n, nil
}

// route registers an instrumented cluster-layer handler: per-endpoint
// request/latency/status counters plus trace-ID minting. Requests the
// node delegates to the embedded server are instrumented again there
// under layer="server" labels; the trace ID minted here carries through.
func (n *Node) route(pattern, endpoint string, h http.HandlerFunc) {
	es := obs.NewEndpointStats(endpoint)
	n.httpStats[endpoint] = es
	n.mux.HandleFunc(pattern, obs.Instrument(es, h))
}

func pickRetries(r int) int {
	if r == 0 {
		return 2
	}
	return r
}

// filterTheta keeps only the terms whose owning shard belongs to self
// under the given table.
func filterTheta(theta resource.Set, tbl *membership.Table, selfID string) resource.Set {
	var out resource.Set
	for _, t := range theta.Terms() {
		if id, ok := tbl.OwnerOf(t.Type.Loc); ok && id == selfID {
			out.Add(t)
		}
	}
	return out
}

// Server exposes the embedded rotad core (selftest and tests).
func (n *Node) Server() *server.Server { return n.srv }

// ID returns this node's identity.
func (n *Node) ID() string { return n.self.ID }

// ServeHTTP implements http.Handler: the cluster layer intercepts the
// routed endpoints and delegates everything else (including the
// node-local /v1/cluster/prepare|commit|abort|free protocol half) to the
// embedded server.
func (n *Node) ServeHTTP(w http.ResponseWriter, r *http.Request) {
	n.mux.ServeHTTP(w, r)
}

// InjectCrashBeforeCommit arms a one-shot simulated coordinator crash:
// the next federated admission this node coordinates stops dead after
// its prepares succeed — no commit, no abort — leaving the leases to
// expire on the participants. Test-only instrumentation for the
// crash-safety property.
func (n *Node) InjectCrashBeforeCommit() { n.crashNext.Store(true) }

// SetGate installs a test hook invoked at named protocol stages
// (currently "prepared", between the prepare and commit phases). Must be
// set before the node serves traffic.
func (n *Node) SetGate(gate func(stage, key string)) { n.gate = gate }

func (n *Node) draining() bool {
	select {
	case <-n.shutdownCh:
		return true
	default:
		return false
	}
}

// Shutdown drains the node: gossip stops, in-flight coordinations abort
// their outstanding prepares instead of leaking them, and the embedded
// server drains its decision pool.
func (n *Node) Shutdown(ctx context.Context) error {
	n.shutdownOnce.Do(func() { close(n.shutdownCh) })
	done := make(chan struct{})
	go func() {
		n.coordWg.Wait()
		n.gossipWg.Wait()
		close(done)
	}()
	select {
	case <-done:
	case <-ctx.Done():
		return fmt.Errorf("cluster: drain interrupted: %w", ctx.Err())
	}
	return n.srv.Shutdown(ctx)
}

// jobFootprint returns the sorted locations a job's resource demands
// touch (links are owned by their source, like ledger shards).
func jobFootprint(dist compute.Distributed) []resource.Location {
	seen := make(map[resource.Location]bool)
	for _, a := range dist.Actors {
		for _, st := range a.Steps {
			for lt := range st.Amounts {
				seen[lt.Loc] = true
			}
		}
	}
	locs := make([]resource.Location, 0, len(seen))
	for loc := range seen {
		locs = append(locs, loc)
	}
	sort.Slice(locs, func(i, j int) bool { return locs[i] < locs[j] })
	return locs
}

// ownersOf groups a job's footprint by owning peer, as resolved by the
// live ownership table and its overlays.
func (n *Node) ownersOf(dist compute.Distributed) (map[*peerState][]resource.Location, error) {
	out := make(map[*peerState][]resource.Location)
	for _, loc := range jobFootprint(dist) {
		ref, ok := n.lookupOwner(loc)
		if !ok {
			return nil, fmt.Errorf("cluster: no node owns location %s", loc)
		}
		ps := n.peerFor(ref)
		out[ps] = append(out[ps], loc)
	}
	if len(out) == 0 {
		return nil, errors.New("cluster: job consumes no resources")
	}
	return out, nil
}

// handleAdmit is the cluster-aware admission entry point: local jobs go
// through the embedded worker pool, single-remote-owner jobs are
// forwarded to their owner, and jobs spanning owners are coordinated
// with the two-phase protocol. Forwarded requests (peer-routed) are
// validated again and never re-forwarded.
func (n *Node) handleAdmit(w http.ResponseWriter, r *http.Request) {
	if n.draining() {
		httpError(w, http.StatusServiceUnavailable, errors.New("cluster: draining, not accepting new admissions"))
		return
	}
	body, err := readBody(w, r, n.maxBody)
	if err != nil {
		httpError(w, http.StatusBadRequest, err)
		return
	}
	// Validation runs here for locally submitted AND peer-forwarded
	// jobs: a misbehaving peer cannot push an invalid job past the wire.
	job, err := server.DecodeAdmitRequest(body)
	if err != nil {
		httpError(w, http.StatusBadRequest, err)
		return
	}
	forwarded := r.Header.Get(headerForwarded) != ""
	for attempt := 0; ; attempt++ {
		owners, err := n.ownersOf(job.Dist)
		if err != nil {
			n.misrouted.Add(1)
			httpError(w, http.StatusUnprocessableEntity, err)
			return
		}
		_, ownsSelf := owners[n.self]
		if forwarded && (len(owners) != 1 || !ownsSelf) {
			// A peer routed this here, but we are not its sole owner. If
			// ownership just moved, answer with a redirect the sender can
			// follow; otherwise count and refuse rather than bouncing the
			// job around the cluster.
			if red, ok := n.redirectFor(jobFootprint(job.Dist)); ok {
				n.serveRedirect(w, red)
				return
			}
			if red, ok := n.tableRedirect(jobFootprint(job.Dist)); ok {
				n.serveRedirect(w, red)
				return
			}
			n.misrouted.Add(1)
			httpError(w, http.StatusUnprocessableEntity,
				fmt.Errorf("cluster: %s forwarded %s here, but %s does not own its whole footprint",
					r.Header.Get(headerForwarded), job.Dist.Name, n.self.ID))
			return
		}
		retry := false
		switch {
		case len(owners) == 1 && ownsSelf:
			retry = n.admitLocal(w, r, job, body)
		case len(owners) == 1:
			for ps := range owners {
				retry = n.forward(w, r, ps, body)
			}
		default:
			retry = n.coordinate(w, r, job, owners)
		}
		if !retry {
			return
		}
		if attempt >= maxOwnerRetries {
			n.misrouted.Add(1)
			httpError(w, http.StatusServiceUnavailable,
				fmt.Errorf("cluster: ownership of %s's footprint kept moving, giving up after %d retries",
					job.Dist.Name, attempt))
			return
		}
	}
}

// admitLocal serves a whole-footprint-local admission under the handoff
// freeze. If the footprint left this node while we waited for the
// freeze to lift, it reports retry so the caller re-resolves owners
// instead of burning the request on ErrNotOwned.
func (n *Node) admitLocal(w http.ResponseWriter, r *http.Request, job workload.Job, body []byte) (retry bool) {
	n.flowMu.RLock()
	defer n.flowMu.RUnlock()
	for _, loc := range jobFootprint(job.Dist) {
		if ref, ok := n.lookupOwner(loc); !ok || ref.id != n.self.ID {
			return true
		}
	}
	r.Body = io.NopCloser(bytes.NewReader(body))
	r.ContentLength = int64(len(body))
	n.srv.ServeHTTP(w, r)
	return false
}

// forward relays a single-owner admit to the owning peer and relays the
// peer's verdict back verbatim. A 421 redirect is consumed here: the
// new owner is learned and the caller retries against it.
func (n *Node) forward(w http.ResponseWriter, r *http.Request, ps *peerState, body []byte) (retry bool) {
	n.forwarded.Add(1)
	sctx, sp := n.spans.Start(r.Context(), span.KindForward)
	defer sp.End()
	sp.Attr("peer", ps.ID)
	headers := map[string]string{
		headerForwarded:   n.self.ID,
		headerIdempotency: n.nextKey("fwd"),
	}
	status, data, err := n.client.proxy(sctx, ps.URL+"/v1/admit", body, headers, ps.rpc)
	if err != nil {
		sp.SetStatus(span.StatusError)
		httpError(w, http.StatusBadGateway, fmt.Errorf("cluster: forwarding to %s: %w", ps.ID, err))
		return false
	}
	if status == http.StatusMisdirectedRequest {
		if red, derr := membership.DecodeRedirect(data); derr == nil {
			n.learnRedirect(red)
			sp.Attr("outcome", "redirected")
			return true
		}
	}
	w.Header().Set("Content-Type", "application/json")
	w.WriteHeader(status)
	_, _ = w.Write(data)
	return false
}

// nextKey mints a cluster-unique idempotency key.
func (n *Node) nextKey(kind string) string {
	return fmt.Sprintf("%s.%s.%d", n.self.ID, kind, n.seq.Add(1))
}

// participant is one owner's slice of a federated admission.
type participant struct {
	ps     *peerState
	locs   []resource.Location
	demand resource.Set
	now    interval.Time
	held   bool
}

// freeOn fetches one owner's free availability for the given locations.
func (n *Node) freeOn(ctx context.Context, ps *peerState, locs []resource.Location) (resource.Set, interval.Time, error) {
	if ps.isSelf {
		n.flowMu.RLock()
		free, now, err := n.srv.Ledger().FreeView(locs)
		n.flowMu.RUnlock()
		if errors.Is(err, server.ErrNotOwned) {
			err = fmt.Errorf("%w: %v", errStaleOwner, err)
		}
		return free, now, err
	}
	parts := make([]string, len(locs))
	for i, loc := range locs {
		parts[i] = string(loc)
	}
	var resp server.FreeResponse
	url := ps.URL + "/v1/cluster/free?locs=" + strings.Join(parts, ",")
	if err := n.client.call(ctx, http.MethodGet, url, nil, &resp, nil, ps.rpc); err != nil {
		return resource.Set{}, 0, fmt.Errorf("cluster: free view from %s: %w", ps.ID, err)
	}
	free, err := resource.ParseSet(resp.Free)
	if err != nil {
		return resource.Set{}, 0, fmt.Errorf("cluster: free view from %s unparsable: %w", ps.ID, err)
	}
	return free, resp.Now, nil
}

// prepareOn asks one owner to hold a sub-plan. held=false with a reason
// is a capacity rejection; err is a protocol failure.
func (n *Node) prepareOn(ctx context.Context, p *participant, key, name string, finish, deadline, expiry interval.Time) (held bool, reason string, err error) {
	if p.ps.isSelf {
		n.flowMu.RLock()
		err := n.srv.Ledger().Prepare(key, name, p.demand, finish, deadline, expiry)
		n.flowMu.RUnlock()
		if errors.Is(err, server.ErrOvercommit) {
			return false, err.Error(), nil
		}
		if errors.Is(err, server.ErrNotOwned) {
			return false, "", fmt.Errorf("%w: %v", errStaleOwner, err)
		}
		return err == nil, "", err
	}
	req := server.PrepareRequest{Key: key, Name: name, Demand: p.demand.Compact(),
		Finish: finish, Deadline: deadline, Expiry: expiry}
	body, err := json.Marshal(req)
	if err != nil {
		return false, "", err
	}
	var resp server.PrepareResponse
	headers := map[string]string{headerIdempotency: key}
	if err := n.client.call(ctx, http.MethodPost, p.ps.URL+"/v1/cluster/prepare", body, &resp, headers, p.ps.rpc); err != nil {
		return false, "", fmt.Errorf("cluster: prepare on %s: %w", p.ps.ID, err)
	}
	return resp.Held, resp.Reason, nil
}

// commitOn promotes one owner's hold.
func (n *Node) commitOn(ctx context.Context, ps *peerState, key string) error {
	if ps.isSelf {
		// finishMoved covers the case where the hold's location left this
		// node mid-2PC: the commit follows it to the new owner.
		return n.finishMoved(ctx, key, "commit")
	}
	body, _ := json.Marshal(server.FinishRequest{Key: key})
	headers := map[string]string{headerIdempotency: key}
	if err := n.client.call(ctx, http.MethodPost, ps.URL+"/v1/cluster/commit", body, nil, headers, ps.rpc); err != nil {
		return fmt.Errorf("cluster: commit on %s: %w", ps.ID, err)
	}
	return nil
}

// abortOn best-effort releases one owner's hold (or rolls back its
// commit). It runs on a detached context so aborts still go out while
// the triggering request is being cancelled or the node is draining —
// span.Detach carries over the parent's trace ID AND its live span
// (previously only the trace was kept, which orphaned every abort span
// from the coordination/migration tree that triggered it), but none of
// its cancellation; a lost abort is reclaimed by the lease sweep.
func (n *Node) abortOn(parent context.Context, ps *peerState, key string) {
	ctx, cancel := context.WithTimeout(span.Detach(parent), n.client.timeout*2)
	defer cancel()
	sctx, sp := n.spans.Start(ctx, span.KindAbort)
	defer sp.End()
	sp.Attr("peer", ps.ID)
	sp.Attr("key", key)
	sp.Attr("detached", true)
	if ps.isSelf {
		if err := n.finishMoved(ctx, key, "abort"); err != nil {
			sp.SetStatus(span.StatusError)
		}
		return
	}
	body, _ := json.Marshal(server.FinishRequest{Key: key})
	headers := map[string]string{headerIdempotency: key}
	if err := n.client.call(sctx, http.MethodPost, ps.URL+"/v1/cluster/abort", body, nil, headers, ps.rpc); err != nil {
		sp.SetStatus(span.StatusError)
	}
}

// coordinate admits a job spanning several owners: plan against the
// merged free views, prepare each owner's sub-plan under a TTL lease,
// then commit everywhere. Any prepare failure aborts the rest; a commit
// failure (an expired lease) rolls everything back. If this coordinator
// dies between prepare and commit, every participant's lease expires and
// the sweep reclaims the holds — no node is ever overcommitted.
// Reports retry=true (nothing written) when a participant turned out to
// no longer own its slice: the caller re-resolves owners and retries.
func (n *Node) coordinate(w http.ResponseWriter, r *http.Request, job workload.Job, owners map[*peerState][]resource.Location) (retry bool) {
	n.coordWg.Add(1)
	defer n.coordWg.Done()
	n.coordinations.Add(1)
	start := time.Now()
	// The coordinate span is the terminal span of a federated admission;
	// free views, the merged plan, and every per-participant prepare,
	// commit and abort nest underneath it (on this node or a peer).
	ctx, csp := n.spans.Start(r.Context(), span.KindCoordinate)
	defer csp.End()
	csp.Attr("job", job.Dist.Name)
	csp.Attr("participants", len(owners))
	trace := obs.Trace(ctx)
	key := n.nextKey("2pc." + job.Dist.Name)
	n.obs.Log("coordinate.start",
		"trace", trace, "key", key, "job", job.Dist.Name, "owners", len(owners))

	// Phase 0: merged free view across the footprint. Staleness is safe:
	// prepare re-checks under the owners' shard locks.
	parts := make([]*participant, 0, len(owners))
	for ps, locs := range owners {
		parts = append(parts, &participant{ps: ps, locs: locs})
	}
	sort.Slice(parts, func(i, j int) bool { return parts[i].ps.ID < parts[j].ps.ID })
	var free resource.Set
	var now interval.Time
	for _, p := range parts {
		set, pnow, err := n.freeOn(ctx, p.ps, p.locs)
		if err != nil {
			if n.staleOwner(err) {
				csp.Attr("outcome", "stale_owner")
				return true
			}
			csp.SetStatus(span.StatusError)
			csp.Attr("outcome", "failed")
			n.coordFailed.Add(1)
			httpError(w, http.StatusServiceUnavailable, err)
			return false
		}
		free = free.Union(set)
		p.now = pnow
		if pnow > now {
			now = pnow
		}
	}
	if now >= job.Dist.Deadline {
		n.finishCoordination(w, trace, job, start, admission.Decision{
			Reason: fmt.Sprintf("deadline %d already passed at t=%d", job.Dist.Deadline, now)}, csp, "")
		return false
	}

	// Phase 1: decide against the merged view, exactly like a local
	// admission against one big ledger.
	state := core.State{Theta: free, Now: now}
	view := admission.View{Now: now, Theta: free, State: &state}
	_, psp := n.spans.Start(ctx, span.KindPlan)
	psp.Attr("job", job.Dist.Name)
	psp.Attr("actors", len(job.Dist.Actors))
	dec := admission.Decide(n.policy, view, job.Dist)
	if !dec.Admit {
		psp.SetStatus(span.StatusReject)
		psp.Attr("error", dec.Reason)
		psp.SetProvenance(span.Classify(dec.Reason))
	}
	psp.End()
	if !dec.Admit {
		n.finishCoordination(w, trace, job, start, dec, csp, "")
		return false
	}
	if dec.Plan == nil {
		csp.SetStatus(span.StatusError)
		csp.Attr("outcome", "failed")
		n.coordFailed.Add(1)
		httpError(w, http.StatusInternalServerError, server.ErrPlanless)
		return false
	}

	// Split the witness plan's demand by owner (live table).
	split := make(map[*peerState]resource.Set)
	for _, t := range dec.Plan.Demand().Terms() {
		ref, ok := n.lookupOwner(t.Type.Loc)
		if !ok {
			csp.SetStatus(span.StatusError)
			csp.Attr("outcome", "failed")
			n.coordFailed.Add(1)
			httpError(w, http.StatusInternalServerError,
				fmt.Errorf("cluster: plan for %s consumes unowned location %s", job.Dist.Name, t.Type.Loc))
			return false
		}
		ps := n.peerFor(ref)
		set := split[ps]
		set.Add(t)
		split[ps] = set
	}
	active := parts[:0]
	for _, p := range parts {
		if demand, ok := split[p.ps]; ok {
			p.demand = demand
			active = append(active, p)
		}
	}
	if len(active) != len(split) {
		// Some demand resolved to an owner that was not a participant:
		// ownership moved between resolution and planning. Retry clean.
		csp.Attr("outcome", "stale_owner")
		return true
	}
	parts = active

	// Phase 2: prepare everywhere, in parallel. Each owner's lease runs
	// on its own ledger clock.
	var wg sync.WaitGroup
	type prepResult struct {
		p      *participant
		held   bool
		reason string
		err    error
	}
	results := make([]prepResult, len(parts))
	for i, p := range parts {
		expiry := p.now
		if now > expiry {
			expiry = now
		}
		expiry += n.leaseTTL
		wg.Add(1)
		go func(i int, p *participant, expiry interval.Time) {
			defer wg.Done()
			held, reason, err := n.prepareOn(ctx, p, key, job.Dist.Name, dec.Plan.Finish, job.Dist.Deadline, expiry)
			results[i] = prepResult{p: p, held: held, reason: reason, err: err}
		}(i, p, expiry)
	}
	wg.Wait()
	var rejectReason, rejectNode string
	var protoErr error
	stale := false
	for _, res := range results {
		res.p.held = res.held
		if res.err != nil {
			if n.staleOwner(res.err) {
				stale = true
				continue
			}
			protoErr = res.err
		} else if !res.held && rejectReason == "" {
			// Remember WHICH participant refused, so the surfaced
			// provenance names the node whose free view failed.
			rejectReason = res.reason
			rejectNode = res.p.ps.ID
		}
	}
	abortHeld := func() {
		for _, p := range parts {
			if p.held {
				n.abortOn(ctx, p.ps, key)
			}
		}
	}
	if protoErr != nil {
		abortHeld()
		csp.SetStatus(span.StatusError)
		csp.Attr("outcome", "failed")
		n.coordFailed.Add(1)
		httpError(w, http.StatusServiceUnavailable, protoErr)
		return false
	}
	if stale {
		// A participant's slice moved mid-prepare; drop what was held and
		// retry against the refreshed ownership.
		abortHeld()
		csp.Attr("outcome", "stale_owner")
		return true
	}
	if rejectReason != "" {
		abortHeld()
		n.finishCoordination(w, trace, job, start, admission.Decision{Reason: rejectReason, Elapsed: dec.Elapsed}, csp, rejectNode)
		return false
	}

	if n.gate != nil {
		n.gate("prepared", key)
	}
	if n.crashNext.CompareAndSwap(true, false) {
		// Simulated coordinator crash: walk away with every participant
		// holding a leased prepare. The lease sweep cleans up.
		n.crashes.Add(1)
		csp.SetStatus(span.StatusError)
		csp.Attr("outcome", "crashed")
		httpError(w, http.StatusInternalServerError,
			fmt.Errorf("cluster: injected coordinator crash before commit of %s", key))
		return false
	}
	if n.draining() {
		// Graceful drain: never leave prepares for the sweep when we can
		// still abort them explicitly.
		abortHeld()
		csp.SetStatus(span.StatusError)
		csp.Attr("outcome", "aborted")
		n.coordFailed.Add(1)
		httpError(w, http.StatusServiceUnavailable, errors.New("cluster: draining, aborted in-flight prepare"))
		return false
	}

	// Phase 3: commit everywhere. Commits are idempotent and retried;
	// a definitive failure (lease expired first) rolls everything back,
	// including participants already committed.
	var commitErr error
	for _, p := range parts {
		if err := n.commitOn(ctx, p.ps, key); err != nil {
			commitErr = err
			break
		}
	}
	if commitErr != nil {
		for _, p := range parts {
			n.abortOn(ctx, p.ps, key)
		}
		csp.SetStatus(span.StatusError)
		csp.Attr("outcome", "aborted")
		n.coordFailed.Add(1)
		httpError(w, http.StatusServiceUnavailable, commitErr)
		return false
	}
	n.finishCoordination(w, trace, job, start, dec, csp, "")
	return false
}

// finishCoordination records the verdict on the coordinate span and
// writes the admit response. rejectNode, when set, names the participant
// whose refusal decided a rejection; it is surfaced on the provenance so
// a client can see not just which constraint failed but where.
func (n *Node) finishCoordination(w http.ResponseWriter, trace string, job workload.Job, start time.Time, dec admission.Decision, sp *span.Span, rejectNode string) {
	n.coordLatency.Observe(float64(time.Since(start).Microseconds()))
	sp.Attr("admit", dec.Admit)
	if dec.Admit {
		n.coordAdmitted.Add(1)
		sp.Attr("outcome", "committed")
	} else {
		n.coordRejected.Add(1)
		sp.Attr("outcome", "rejected")
		sp.SetStatus(span.StatusReject)
	}
	n.obs.Log("coordinate.verdict",
		"trace", trace,
		"job", job.Dist.Name,
		"admit", dec.Admit,
		"reason", dec.Reason,
		"total_us", time.Since(start).Microseconds())
	resp := server.AdmitResponse{
		Job:       job.Dist.Name,
		Admit:     dec.Admit,
		Reason:    dec.Reason,
		Deadline:  job.Dist.Deadline,
		ElapsedUS: dec.Elapsed.Microseconds(),
	}
	if dec.Plan != nil {
		resp.Finish = dec.Plan.Finish
	}
	if !dec.Admit {
		prov := span.Classify(dec.Reason)
		if prov != nil && rejectNode != "" {
			prov.Node = rejectNode
		}
		resp.Provenance = prov
		sp.SetProvenance(prov)
	}
	writeJSON(w, http.StatusOK, resp)
}

// handleRelease releases a job cluster-wide: a federated admission
// leaves one commitment per owning node, so the release fans out to
// every member (forwarded requests stay local — no loops).
func (n *Node) handleRelease(w http.ResponseWriter, r *http.Request) {
	body, err := readBody(w, r, n.maxBody)
	if err != nil {
		httpError(w, http.StatusBadRequest, err)
		return
	}
	if r.Header.Get(headerForwarded) != "" {
		n.flowMu.RLock()
		defer n.flowMu.RUnlock()
		r.Body = io.NopCloser(bytes.NewReader(body))
		r.ContentLength = int64(len(body))
		n.srv.ServeHTTP(w, r)
		return
	}
	var req struct {
		Name string `json:"name"`
	}
	if err := json.Unmarshal(body, &req); err != nil || req.Name == "" {
		httpError(w, http.StatusBadRequest, errors.New("cluster: release needs a name"))
		return
	}
	released := 0
	var lastErr error
	for _, ps := range n.releaseTargets() {
		if ps.isSelf {
			n.flowMu.RLock()
			err := n.srv.Ledger().Release(req.Name)
			n.flowMu.RUnlock()
			if err == nil {
				released++
			}
			continue
		}
		headers := map[string]string{headerForwarded: n.self.ID}
		if err := n.client.call(r.Context(), http.MethodPost, ps.URL+"/v1/release", body, nil, headers, ps.rpc); err != nil {
			var se *httpStatusError
			if !errors.As(err, &se) || se.status != http.StatusNotFound {
				lastErr = err
			}
			continue
		}
		released++
	}
	if released == 0 {
		if lastErr != nil {
			httpError(w, http.StatusBadGateway, lastErr)
			return
		}
		httpError(w, http.StatusNotFound, fmt.Errorf("cluster: %s not committed on any node", req.Name))
		return
	}
	n.releases.Add(1)
	writeJSON(w, http.StatusOK, map[string]any{"released": req.Name, "nodes": released})
}

// Gossip is the periodic Θ/reserved summary a node broadcasts: enough
// for peers to see its clock, load, per-location availability, and —
// since dynamic membership — its table epoch (anti-entropy trigger) and
// ledger epoch (standing watches on other nodes re-evaluate when a
// remote ledger they depend on changed).
type Gossip struct {
	Node        string            `json:"node"`
	URL         string            `json:"url,omitempty"`
	Now         interval.Time     `json:"now"`
	Shards      int               `json:"shards"`
	Commitments int               `json:"commitments"`
	Holds       int               `json:"holds"`
	Epoch       uint64            `json:"epoch"`
	LedgerEpoch uint64            `json:"ledger_epoch"`
	Theta       map[string]string `json:"theta"`
	Reserved    map[string]string `json:"reserved"`
	// Suspects names the peers this sender's φ-accrual detector holds
	// at Suspect or worse — the accusation half of quorum eviction.
	Suspects []string `json:"suspects,omitempty"`
	// Intent is the sender's open membership choreography, if it is
	// currently stewarding one — the gossiped journal that lets any
	// survivor repair the plan if the sender dies mid-flight.
	Intent *membership.Intent `json:"intent,omitempty"`
}

func (n *Node) buildGossip() Gossip {
	snap := n.srv.Ledger().Snapshot()
	g := Gossip{
		Node:        n.self.ID,
		URL:         n.self.URL,
		Now:         snap.Now,
		Shards:      len(snap.Shards),
		Commitments: len(snap.Commitments),
		Holds:       len(snap.Holds),
		Epoch:       n.reg.Epoch(),
		LedgerEpoch: n.srv.Ledger().Epoch(),
		Theta:       make(map[string]string, len(snap.Shards)),
		Reserved:    make(map[string]string, len(snap.Shards)),
	}
	for _, sh := range snap.Shards {
		g.Theta[string(sh.Location)] = sh.Theta
		g.Reserved[string(sh.Location)] = sh.Reserved
	}
	n.hmu.Lock()
	g.Suspects = append([]string(nil), n.suspects...)
	n.hmu.Unlock()
	g.Intent = n.ownIntent()
	return g
}

// gossipLoop periodically pushes this node's summary to every peer and
// ships warm-standby shadows when the ledger changed.
func (n *Node) gossipLoop(every time.Duration) {
	defer n.gossipWg.Done()
	ticker := time.NewTicker(every)
	defer ticker.Stop()
	for {
		select {
		case <-n.shutdownCh:
			return
		case <-ticker.C:
		}
		body, err := json.Marshal(n.buildGossip())
		if err != nil {
			continue
		}
		ctx, cancel := context.WithTimeout(context.Background(), n.client.timeout)
		for _, ps := range n.peersSnapshot() {
			if ps.isSelf {
				continue
			}
			err := n.client.call(ctx, http.MethodPost, ps.URL+"/v1/cluster/gossip", body, nil, nil, ps.rpc)
			if evictedReply(err) {
				// The peer's table no longer lists us: we were evicted
				// while partitioned. Drop everything and rejoin fresh.
				n.maybeRejoin(ps.URL)
			}
		}
		n.shipShadows(ctx, n.reg.Snapshot())
		n.healthTick(ctx, time.Now())
		cancel()
	}
}

// evictedReply reports whether a gossip call failed because the peer
// fenced us out (421 from a node whose table excludes us).
func evictedReply(err error) bool {
	var se *httpStatusError
	return errors.As(err, &se) && se.status == http.StatusMisdirectedRequest
}

func (n *Node) handleGossip(w http.ResponseWriter, r *http.Request) {
	body, err := readBody(w, r, n.maxBody)
	if err != nil {
		httpError(w, http.StatusBadRequest, err)
		return
	}
	var g Gossip
	if err := json.Unmarshal(body, &g); err != nil {
		httpError(w, http.StatusBadRequest, fmt.Errorf("cluster: bad gossip body: %w", err))
		return
	}
	tbl := n.reg.Snapshot()
	if _, member := tbl.Member(g.Node); !member {
		if g.Epoch > tbl.Epoch && g.URL != "" {
			// A member we have not heard of, on a newer table: fetch it.
			go n.fetchTable(g.URL)
			writeJSON(w, http.StatusOK, map[string]string{"syncing": g.Node})
			return
		}
		// The sender is not in our (equal-or-newer) table: it was
		// evicted. The forward-only registry epoch is the fence — a
		// partitioned-but-alive node that comes back lands here, learns
		// it lost, and rejoins cleanly instead of split-braining.
		n.fencedGossip.Add(1)
		writeJSON(w, http.StatusMisdirectedRequest, map[string]any{
			"error": fmt.Sprintf("cluster: %s is not a member at epoch %d; rejoin required", g.Node, tbl.Epoch),
			"epoch": tbl.Epoch,
		})
		return
	}
	ps, ok := n.peerByID(g.Node)
	if !ok || ps.isSelf {
		httpError(w, http.StatusUnprocessableEntity, fmt.Errorf("cluster: gossip from unknown node %q", g.Node))
		return
	}
	if g.Epoch > n.reg.Epoch() {
		go n.fetchTable(ps.URL)
	}
	// Gossip receipt IS the heartbeat: feed the φ-accrual detector and
	// the accusation ledger, and journal the sender's open intent.
	n.observeGossip(g, time.Now())
	ps.mu.Lock()
	ps.lastHeard = time.Now()
	ps.lastNow = g.Now
	ps.lastHolds = g.Holds
	ledgerMoved := g.LedgerEpoch != ps.lastLedgerEpoch
	ps.lastLedgerEpoch = g.LedgerEpoch
	ps.mu.Unlock()
	if ledgerMoved {
		// A remote ledger this node's standing watches may depend on
		// changed; re-evaluate them through the cluster evaluator.
		n.srv.Queries().Bump(n.srv.Ledger().Epoch(), "gossip")
	}
	writeJSON(w, http.StatusOK, map[string]string{"ok": g.Node})
}

// PeerStatus is one row of the peer table as surfaced by /v1/stats and
// /v1/cluster/peers.
type PeerStatus struct {
	ID           string             `json:"id"`
	URL          string             `json:"url"`
	Locations    []string           `json:"locations"`
	Self         bool               `json:"self,omitempty"`
	LastHeardMS  int64              `json:"last_heard_ms,omitempty"` // ms since last gossip, -1 never
	GossipNow    interval.Time      `json:"gossip_now,omitempty"`
	GossipHolds  int                `json:"gossip_holds,omitempty"`
	RPC          metrics.RPCSummary `json:"rpc"`
	OwnShardView int                `json:"-"`
}

func (n *Node) peerStatuses() []PeerStatus {
	tbl := n.reg.Snapshot()
	peers := n.peersSnapshot()
	out := make([]PeerStatus, 0, len(peers))
	for _, ps := range peers {
		owned := tbl.Locations(ps.ID)
		locs := make([]string, len(owned))
		for i, loc := range owned {
			locs[i] = string(loc)
		}
		st := PeerStatus{ID: ps.ID, URL: ps.URL, Locations: locs, Self: ps.isSelf, RPC: ps.rpc.Summary()}
		ps.mu.Lock()
		if ps.lastHeard.IsZero() {
			st.LastHeardMS = -1
		} else {
			st.LastHeardMS = time.Since(ps.lastHeard).Milliseconds()
		}
		st.GossipNow = ps.lastNow
		st.GossipHolds = ps.lastHolds
		ps.mu.Unlock()
		out = append(out, st)
	}
	return out
}

func (n *Node) handlePeers(w http.ResponseWriter, r *http.Request) {
	writeJSON(w, http.StatusOK, map[string]any{"self": n.self.ID, "peers": n.peerStatuses()})
}

// ClusterCounters digests this node's federation-layer activity.
type ClusterCounters struct {
	Forwarded       uint64 `json:"forwarded"`
	Misrouted       uint64 `json:"misrouted"`
	Coordinations   uint64 `json:"coordinations"`
	CoordAdmitted   uint64 `json:"coord_admitted"`
	CoordRejected   uint64 `json:"coord_rejected"`
	CoordFailed     uint64 `json:"coord_failed"`
	InjectedCrashes uint64 `json:"injected_crashes"`
	Migrations      uint64 `json:"migrations"`
	Releases        uint64 `json:"releases"`
	// FanoutQueries counts temporal queries answered against merged
	// remote free views (all-local queries delegate to the server layer).
	FanoutQueries uint64 `json:"fanout_queries"`

	// Dynamic-membership counters. MembershipEpoch is the table version
	// this node currently routes by; Joins/Leaves count changes this node
	// stewarded, Handoffs/Promotions ownership moves it executed.
	MembershipEpoch   uint64 `json:"membership_epoch"`
	Joins             uint64 `json:"joins"`
	Leaves            uint64 `json:"leaves"`
	Handoffs          uint64 `json:"handoffs"`
	Promotions        uint64 `json:"promotions"`
	RedirectsServed   uint64 `json:"redirects_served"`
	RedirectsFollowed uint64 `json:"redirects_followed"`
	TableApplies      uint64 `json:"table_applies"`
	ShadowShips       uint64 `json:"shadow_ships"`
	ShadowMisses      uint64 `json:"shadow_misses"`

	// Self-healing counters. AutoEvictions counts quorum-agreed
	// force-leaves this node stewarded with no operator involvement;
	// Rejoins counts fence-triggered drop-and-rejoin cycles this node
	// performed after being evicted; IntentRepairs counts partially
	// applied membership plans this node finished or rolled back for a
	// dead steward; FencedGossip counts 421s served to evicted senders;
	// SuspectedPeers is the current number of peers at Suspect or worse.
	AutoEvictions  uint64 `json:"auto_evictions"`
	Rejoins        uint64 `json:"rejoins"`
	IntentRepairs  uint64 `json:"intent_repairs"`
	FencedGossip   uint64 `json:"fenced_gossip"`
	SuspectedPeers uint64 `json:"suspected_peers"`

	CoordLatencyMeanUS float64 `json:"coord_latency_mean_us"`
	CoordLatencyP50US  float64 `json:"coord_latency_p50_us"`
	CoordLatencyP99US  float64 `json:"coord_latency_p99_us"`
}

// RPCConfig surfaces the peer-RPC tunables actually in effect (flags or
// defaults) so an operator can read back what a node is running with.
type RPCConfig struct {
	TimeoutMS     int64 `json:"timeout_ms"`
	Retries       int   `json:"retries"`
	BackoffBaseMS int64 `json:"backoff_base_ms"`
	BackoffCapMS  int64 `json:"backoff_cap_ms"`
}

// NodeStats is the combined /v1/stats body in cluster mode: the embedded
// server's digest plus the federation layer's counters, failure-detector
// assessments, RPC tuning, and peer table.
type NodeStats struct {
	server.StatsResponse
	Node    string          `json:"node"`
	Cluster ClusterCounters `json:"cluster"`
	Health  HealthStatus    `json:"health"`
	RPC     RPCConfig       `json:"rpc_config"`
	Peers   []PeerStatus    `json:"peers"`
}

// Stats returns the node's combined digest.
func (n *Node) Stats() NodeStats {
	lat := n.coordLatency.Summary()
	return NodeStats{
		StatsResponse: n.srv.Stats(),
		Node:          n.self.ID,
		Health:        n.healthStatus(),
		RPC: RPCConfig{
			TimeoutMS:     n.client.timeout.Milliseconds(),
			Retries:       n.client.retries,
			BackoffBaseMS: n.client.backoffBase.Milliseconds(),
			BackoffCapMS:  n.client.backoffCap.Milliseconds(),
		},
		Cluster: ClusterCounters{
			Forwarded:          n.forwarded.Load(),
			Misrouted:          n.misrouted.Load(),
			Coordinations:      n.coordinations.Load(),
			CoordAdmitted:      n.coordAdmitted.Load(),
			CoordRejected:      n.coordRejected.Load(),
			CoordFailed:        n.coordFailed.Load(),
			InjectedCrashes:    n.crashes.Load(),
			Migrations:         n.migrations.Load(),
			Releases:           n.releases.Load(),
			FanoutQueries:      n.fanouts.Load(),
			MembershipEpoch:    n.reg.Epoch(),
			Joins:              n.joins.Load(),
			Leaves:             n.leaves.Load(),
			Handoffs:           n.handoffs.Load(),
			Promotions:         n.promotions.Load(),
			RedirectsServed:    n.redirectsServed.Load(),
			RedirectsFollowed:  n.redirectsFollowed.Load(),
			TableApplies:       n.tableApplies.Load(),
			ShadowShips:        n.shadowShips.Load(),
			ShadowMisses:       n.shadowMisses.Load(),
			AutoEvictions:      n.autoEvictions.Load(),
			Rejoins:            n.rejoins.Load(),
			IntentRepairs:      n.intentRepairs.Load(),
			FencedGossip:       n.fencedGossip.Load(),
			SuspectedPeers:     n.suspectedNow.Load(),
			CoordLatencyMeanUS: lat.Mean,
			CoordLatencyP50US:  lat.P50,
			CoordLatencyP99US:  lat.P99,
		},
		Peers: n.peerStatuses(),
	}
}

func (n *Node) handleStats(w http.ResponseWriter, r *http.Request) {
	writeJSON(w, http.StatusOK, n.Stats())
}

// MigrateRequest asks this node to re-home a committed job's remaining
// plan onto the target peer — the paper's migrate rule at system scale.
type MigrateRequest struct {
	Name   string `json:"name"`
	Target string `json:"target"`
}

// handleMigrate re-homes a commitment: the remaining demand is re-mapped
// onto the target's locations, prepared and committed there through the
// standard two-phase path, and only then released locally
// (make-before-break: capacity is briefly double-held, never
// double-promised).
func (n *Node) handleMigrate(w http.ResponseWriter, r *http.Request) {
	var req MigrateRequest
	body, err := readBody(w, r, n.maxBody)
	if err != nil {
		httpError(w, http.StatusBadRequest, err)
		return
	}
	if err := json.Unmarshal(body, &req); err != nil || req.Name == "" || req.Target == "" {
		httpError(w, http.StatusBadRequest, errors.New("cluster: migrate needs {name, target}"))
		return
	}
	target, ok := n.peerByID(req.Target)
	if !ok {
		httpError(w, http.StatusNotFound, fmt.Errorf("cluster: unknown target node %s", req.Target))
		return
	}
	if target.isSelf {
		httpError(w, http.StatusBadRequest, fmt.Errorf("cluster: %s already lives here", req.Name))
		return
	}
	tbl := n.reg.Snapshot()
	selfLocs := tbl.Locations(n.self.ID)
	targetLocs := tbl.Locations(target.ID)
	if len(targetLocs) == 0 {
		httpError(w, http.StatusConflict, fmt.Errorf("cluster: target %s owns no locations", target.ID))
		return
	}
	demand, info, err := n.srv.Ledger().RemainingDemand(req.Name)
	if err != nil {
		httpError(w, http.StatusNotFound, err)
		return
	}
	remapped, mapping := remapDemand(demand, selfLocs, targetLocs)

	// The migration span parents everything downstream — including the
	// detached abort issued if the make-before-break handover fails
	// partway, which would otherwise float free of the trace tree.
	sctx, msp := n.spans.Start(r.Context(), span.KindMigrate)
	defer msp.End()
	msp.Attr("job", req.Name)
	msp.Attr("from", n.self.ID)
	msp.Attr("to", target.ID)

	// Lease against the target's clock, then prepare/commit there.
	_, targetNow, err := n.freeOn(sctx, target, targetLocs)
	if err != nil {
		msp.SetStatus(span.StatusError)
		msp.Attr("outcome", "failed")
		httpError(w, http.StatusServiceUnavailable, err)
		return
	}
	key := n.nextKey("migrate." + req.Name)
	p := &participant{ps: target, demand: remapped}
	held, reason, err := n.prepareOn(sctx, p, key, req.Name, info.Finish, info.Deadline, targetNow+n.leaseTTL)
	if err != nil {
		msp.SetStatus(span.StatusError)
		msp.Attr("outcome", "failed")
		httpError(w, http.StatusServiceUnavailable, err)
		return
	}
	if !held {
		msp.SetStatus(span.StatusReject)
		msp.Attr("outcome", "rejected")
		prov := span.Classify(reason)
		if prov != nil {
			prov.Node = target.ID
		}
		msp.SetProvenance(prov)
		httpError(w, http.StatusConflict, fmt.Errorf("cluster: %s cannot accommodate %s: %s", target.ID, req.Name, reason))
		return
	}
	if err := n.commitOn(sctx, target, key); err != nil {
		n.abortOn(sctx, target, key)
		msp.SetStatus(span.StatusError)
		msp.Attr("outcome", "aborted")
		httpError(w, http.StatusServiceUnavailable, err)
		return
	}
	// ReleaseTransferred, not Release: the deadline promise moved with
	// the job (the target adopted it at commit) — this node's record is
	// a transfer, not a kept outcome.
	if err := n.srv.Ledger().ReleaseTransferred(req.Name); err != nil {
		// The job now lives on both nodes; roll the target back so the
		// original commitment remains the single source of truth.
		n.abortOn(sctx, target, key)
		msp.SetStatus(span.StatusError)
		msp.Attr("outcome", "aborted")
		httpError(w, http.StatusInternalServerError, err)
		return
	}
	n.migrations.Add(1)
	msp.Attr("outcome", "migrated")
	n.obs.Log("migrate.done",
		"trace", obs.Trace(r.Context()), "job", req.Name, "target", target.ID, "key", key)
	writeJSON(w, http.StatusOK, map[string]any{
		"migrated": req.Name,
		"from":     n.self.ID,
		"to":       target.ID,
		"mapping":  mapping,
		"demand":   remapped.Compact(),
	})
}

// remapDemand substitutes source locations with target locations
// (round-robin over the sorted lists), preserving kinds, rates and
// windows — the resource-level meaning of moving a computation.
func remapDemand(demand resource.Set, from, to []resource.Location) (resource.Set, map[string]string) {
	srcs := append([]resource.Location(nil), from...)
	sort.Slice(srcs, func(i, j int) bool { return srcs[i] < srcs[j] })
	dsts := append([]resource.Location(nil), to...)
	sort.Slice(dsts, func(i, j int) bool { return dsts[i] < dsts[j] })
	m := make(map[resource.Location]resource.Location, len(srcs))
	mapping := make(map[string]string, len(srcs))
	for i, src := range srcs {
		dst := dsts[i%len(dsts)]
		m[src] = dst
		mapping[string(src)] = string(dst)
	}
	var out resource.Set
	for _, t := range demand.Terms() {
		lt := t.Type
		if dst, ok := m[lt.Loc]; ok {
			lt.Loc = dst
		}
		if lt.Dst != "" {
			if dst, ok := m[lt.Dst]; ok {
				lt.Dst = dst
			}
		}
		out.Add(resource.NewTerm(t.Rate, lt, t.Span))
	}
	return out, mapping
}

// handleClusterAdvance fans a clock advance out to every member, so one
// call moves the whole federation's time forward (and with it, every
// node's lease-expiry sweep).
func (n *Node) handleClusterAdvance(w http.ResponseWriter, r *http.Request) {
	var req struct {
		Now interval.Time `json:"now"`
	}
	body, err := readBody(w, r, n.maxBody)
	if err != nil {
		httpError(w, http.StatusBadRequest, err)
		return
	}
	if err := json.Unmarshal(body, &req); err != nil {
		httpError(w, http.StatusBadRequest, fmt.Errorf("cluster: bad advance body: %w", err))
		return
	}
	peers := n.peersSnapshot()
	results := make(map[string]any, len(peers))
	failed := false
	for _, ps := range peers {
		if ps.isSelf {
			completed, err := n.srv.Ledger().Advance(req.Now)
			if err != nil {
				results[ps.ID] = map[string]string{"error": err.Error()}
				failed = true
				continue
			}
			results[ps.ID] = map[string]any{"now": req.Now, "completed": len(completed)}
			continue
		}
		if err := n.client.call(r.Context(), http.MethodPost, ps.URL+"/v1/advance", body, nil, nil, ps.rpc); err != nil {
			results[ps.ID] = map[string]string{"error": err.Error()}
			failed = true
			continue
		}
		results[ps.ID] = map[string]any{"now": req.Now}
	}
	status := http.StatusOK
	if failed {
		status = http.StatusBadGateway
	}
	writeJSON(w, status, map[string]any{"nodes": results})
}

// HTTP helpers (the server's equivalents are unexported).

func readBody(w http.ResponseWriter, r *http.Request, limit int64) ([]byte, error) {
	defer r.Body.Close()
	body, err := io.ReadAll(http.MaxBytesReader(w, r.Body, limit))
	if err != nil {
		var mbe *http.MaxBytesError
		if errors.As(err, &mbe) {
			return nil, fmt.Errorf("cluster: body exceeds %d bytes", limit)
		}
		return nil, err
	}
	return body, nil
}

func writeJSON(w http.ResponseWriter, status int, v any) {
	w.Header().Set("Content-Type", "application/json")
	w.WriteHeader(status)
	_ = json.NewEncoder(w).Encode(v)
}

func httpError(w http.ResponseWriter, status int, err error) {
	writeJSON(w, status, map[string]string{"error": err.Error()})
}
