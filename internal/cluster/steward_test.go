package cluster

import (
	"bytes"
	"context"
	"encoding/json"
	"io"
	"net/http"
	"strings"
	"sync"
	"testing"
	"time"

	"repro/internal/resource"
)

// tryPost is post without the t.Fatal on transport errors — for
// requests issued from goroutines while the target is being killed,
// where a severed connection is an expected outcome.
func tryPost(url string, v any) (int, []byte, error) {
	body, err := json.Marshal(v)
	if err != nil {
		return 0, nil, err
	}
	resp, err := http.Post(url, "application/json", bytes.NewReader(body))
	if err != nil {
		return 0, nil, err
	}
	defer resp.Body.Close()
	data, err := io.ReadAll(io.LimitReader(resp.Body, 1<<20))
	if err != nil {
		return resp.StatusCode, nil, err
	}
	return resp.StatusCode, data, nil
}

// parkSteward installs a gate on node i that parks the choreography the
// first time it reaches stage, and returns (parked, release): parked is
// closed once the steward is paused inside the stage, release un-parks
// it (also registered as a cleanup so the goroutine never leaks).
func parkSteward(t *testing.T, tc *testCluster, i int, stage string) (<-chan struct{}, func()) {
	t.Helper()
	parked := make(chan struct{})
	release := make(chan struct{})
	var parkOnce, releaseOnce sync.Once
	tc.nodes[i].SetGate(func(st, key string) {
		if st == stage {
			parkOnce.Do(func() { close(parked) })
			<-release
		}
	})
	rel := func() { releaseOnce.Do(func() { close(release) }) }
	t.Cleanup(rel)
	return parked, rel
}

// intentHeard reports whether node holds an open intent journaled by
// steward — the gossip having delivered the plan a repair would need.
func intentHeard(nd *Node, steward string) bool {
	return nd.intentFor(steward) != nil
}

// TestStewardDeathMidJoin kills the join steward at each choreography
// stage and asserts the survivors repair the journaled plan under
// automatic failure detection: the dead steward is evicted, the join it
// was conducting still completes, the pinned location ends up exactly
// where the probe-based repair says the data actually got to, and the
// committed reservation seeded there is neither lost nor duplicated.
func TestStewardDeathMidJoin(t *testing.T) {
	// Handoff groups run sorted by source, so the steward's own
	// rebalance group (from n1) executes before the pinned move from n2:
	// at the first join.handoff fire the joiner holds n1's former
	// locations but not yet the pin.
	cases := []struct {
		stage   string
		moved   bool // must the pinned location end up on the joiner?
		partial bool // must the joiner own the first (rebalance) group?
	}{
		{"join.announced", false, false}, // plan journaled, nothing moved
		{"join.moving", false, false},    // checkpointed, still nothing moved
		{"join.handoff", false, true},    // first group landed, pin did not
		{"join.committing", true, true},  // all handoffs done, not committed
	}
	for _, tt := range cases {
		t.Run(tt.stage, func(t *testing.T) {
			tc := newHealthCluster(t, 3, 2, nil)
			waitDetectorWarm(t, tc.nodes, []string{"n1", "n2", "n3"}, 10*time.Second)

			// A committed reservation on the location the join pins: it
			// must survive the steward's death no matter how far the
			// handoff got. The pin belongs to survivor n2, so the move is
			// a steward-ordered RPC handoff that can outlive the steward.
			pin := tc.peers[1].Locations[0]
			job := pinnedJob(t, "steward-death-seed", pin, 5000)
			if status, body := post(t, tc.urls[0]+"/v1/admit", job, nil); status != http.StatusOK {
				t.Fatalf("seeding %s: %d: %s", pin, status, body)
			}

			joiner, _ := newJoiner(t, "n4")
			parked, _ := parkSteward(t, tc, 0, tt.stage)
			joinDone := make(chan error, 1)
			go func() {
				ctx, cancel := context.WithTimeout(context.Background(), 60*time.Second)
				defer cancel()
				joinDone <- joiner.JoinCluster(ctx, tc.urls[0], []resource.Location{pin})
			}()
			select {
			case <-parked:
			case err := <-joinDone:
				t.Fatalf("join finished before reaching %s: %v", tt.stage, err)
			case <-time.After(10 * time.Second):
				t.Fatalf("steward never reached %s", tt.stage)
			}

			// The survivors must hold the journaled plan before the crash
			// — that gossip is exactly what makes the death repairable.
			waitFor(t, 5*time.Second, "intent gossiped to survivors", func() bool {
				return intentHeard(tc.nodes[1], "n1") && intentHeard(tc.nodes[2], "n1")
			})

			tc.kill(t, 0) // true silence mid-choreography
			<-joinDone    // severed or repaired; either is fine

			survivors := []*Node{tc.nodes[1], tc.nodes[2]}
			waitGone(t, survivors, "n1", 30*time.Second)

			// Repair must complete the join: the joiner is a member of a
			// converged table on every live node, dead steward excluded,
			// and the pin sits with whoever actually holds the data.
			live := append(append([]*Node{}, survivors...), joiner)
			wantOwner := "n2"
			if tt.moved {
				wantOwner = "n4"
			}
			waitFor(t, 30*time.Second, "joiner in every live table", func() bool {
				var epoch uint64
				for i, nd := range live {
					tbl := nd.Table()
					if _, ok := tbl.Member("n4"); !ok {
						return false
					}
					if _, ok := tbl.Member("n1"); ok {
						return false
					}
					if owner, ok := tbl.OwnerOf(pin); !ok || owner != wantOwner {
						return false
					}
					if i == 0 {
						epoch = tbl.Epoch
					} else if tbl.Epoch != epoch {
						return false
					}
				}
				return true
			})

			var repairs uint64
			for _, nd := range survivors {
				repairs += nd.Stats().Cluster.IntentRepairs
			}
			if repairs < 1 {
				t.Fatal("no intent repairs recorded; the join completed some other way")
			}
			if homes := commitmentHome(live, "steward-death-seed"); homes != 1 {
				t.Fatalf("seed lives on %d ledgers after repair, want exactly 1", homes)
			}
			if tt.moved {
				if _, ok := joiner.Server().Ledger().Commitment("steward-death-seed"); !ok {
					t.Fatal("seed did not travel with the completed handoff to the joiner")
				}
			}
			if tt.partial {
				// The handoffs that finished before the crash must be
				// committed by the repair, not rolled back.
				if owned := tc.nodes[1].Table().Locations("n4"); len(owned) == 0 {
					t.Fatal("completed handoffs were not committed: the joiner owns nothing")
				}
			}
			for _, nd := range live {
				if err := nd.Server().Ledger().Audit(); err != nil {
					t.Fatal(err)
				}
			}
		})
	}
}

// TestStewardDeathMidLeave kills the steward of a graceful leave after
// the plan was journaled but before any handoff: the survivor must
// force-complete the departure (promoting from the gossip-fed shadow),
// evict the dead steward, and the still-alive victim — fenced out by a
// table that no longer lists it — must rejoin entirely on its own.
func TestStewardDeathMidLeave(t *testing.T) {
	tc := newHealthCluster(t, 3, 2, nil)
	waitDetectorWarm(t, tc.nodes, []string{"n1", "n2", "n3"}, 10*time.Second)

	// Pick a victim location whose standby is the surviving non-steward
	// n2: the repair promotes from shadows, and a shadow on the node
	// about to be killed proves nothing.
	var vloc resource.Location
	for _, loc := range tc.peers[2].Locations {
		if tc.nodes[0].Table().StandbyOf(loc) == "n2" {
			vloc = loc
			break
		}
	}
	if vloc == "" {
		t.Skipf("no location of n3 has n2 as standby under this rendezvous layout")
	}
	job := pinnedJob(t, "leave-seed", vloc, 5000)
	if status, body := post(t, tc.urls[0]+"/v1/admit", job, nil); status != http.StatusOK {
		t.Fatalf("seeding %s: %d: %s", vloc, status, body)
	}
	waitFor(t, 5*time.Second, "standby shadow warm", func() bool {
		cms, _, ok := tc.nodes[1].ShadowFor(vloc)
		return ok && cms >= 1
	})

	parked, _ := parkSteward(t, tc, 0, "leave.announced")
	leaveDone := make(chan int, 1)
	go func() {
		status, _, _ := tryPost(tc.urls[0]+"/v1/cluster/leave", map[string]any{"id": "n3"})
		leaveDone <- status
	}()
	select {
	case <-parked:
	case status := <-leaveDone:
		t.Fatalf("leave finished before the announce stage: %d", status)
	case <-time.After(10 * time.Second):
		t.Fatal("steward never reached leave.announced")
	}
	waitFor(t, 5*time.Second, "intent gossiped to the survivor", func() bool {
		return intentHeard(tc.nodes[1], "n1")
	})
	tc.kill(t, 0)
	<-leaveDone // severed; the repair finishes the leave without it

	// The survivor must evict the dead steward and finish its journaled
	// leave; the fenced victim must then rejoin automatically.
	waitGone(t, []*Node{tc.nodes[1]}, "n1", 30*time.Second)
	waitFor(t, 30*time.Second, "fenced victim rejoined", func() bool {
		if tc.nodes[2].Stats().Cluster.Rejoins < 1 {
			return false
		}
		t2, t3 := tc.nodes[1].Table(), tc.nodes[2].Table()
		_, ok2 := t2.Member("n3")
		_, ok3 := t3.Member("n3")
		return ok2 && ok3 && t2.Epoch == t3.Epoch
	})
	if repairs := tc.nodes[1].Stats().Cluster.IntentRepairs; repairs < 1 {
		t.Fatalf("survivor recorded %d intent repairs, want >= 1", repairs)
	}
	// The committed reservation survived the forced completion on the
	// promoted standby — and only there (the rejoined victim dropped its
	// fenced copy).
	live := []*Node{tc.nodes[1], tc.nodes[2]}
	waitFor(t, 10*time.Second, "seed on exactly one ledger", func() bool {
		return commitmentHome(live, "leave-seed") == 1
	})
	for _, nd := range live {
		if err := nd.Server().Ledger().Audit(); err != nil {
			t.Fatal(err)
		}
	}
}

// TestLeaveQueuesBehindJoin: a graceful leave arriving while a join
// holds the steward semaphore must queue and then run, not fail.
func TestLeaveQueuesBehindJoin(t *testing.T) {
	tc := newHealthCluster(t, 3, 2, nil)

	joiner, _ := newJoiner(t, "n4")
	parked, release := parkSteward(t, tc, 0, "join.announced")
	joinDone := make(chan error, 1)
	go func() {
		ctx, cancel := context.WithTimeout(context.Background(), 30*time.Second)
		defer cancel()
		joinDone <- joiner.JoinCluster(ctx, tc.urls[0], nil)
	}()
	select {
	case <-parked:
	case <-time.After(10 * time.Second):
		t.Fatal("steward never reached join.announced")
	}

	// The leave queues on the semaphore while the join is parked...
	leaveDone := make(chan int, 1)
	go func() {
		status, _, _ := tryPost(tc.urls[0]+"/v1/cluster/leave", map[string]any{"id": "n3"})
		leaveDone <- status
	}()
	select {
	case status := <-leaveDone:
		t.Fatalf("leave returned %d while the join still held the steward", status)
	case <-time.After(300 * time.Millisecond):
	}

	// ...and runs to completion once the join releases it.
	release()
	if err := <-joinDone; err != nil {
		t.Fatalf("join: %v", err)
	}
	if status := <-leaveDone; status != http.StatusOK {
		t.Fatalf("queued leave returned %d, want 200", status)
	}
	waitFor(t, 10*time.Second, "table reflects both changes", func() bool {
		tbl := tc.nodes[0].Table()
		_, joined := tbl.Member("n4")
		_, left := tbl.Member("n3")
		return joined && !left
	})
}

// TestLeaveBoundedWaitBehindStuckJoin: when the steward stays busy past
// the configured bound, the queued leave must fail with a clear
// "steward busy" error rather than hanging.
func TestLeaveBoundedWaitBehindStuckJoin(t *testing.T) {
	tc := newHealthCluster(t, 3, 2, func(i int, c *Config) {
		c.StewardWait = 150 * time.Millisecond
	})

	joiner, _ := newJoiner(t, "n4")
	parked, release := parkSteward(t, tc, 0, "join.announced")
	joinDone := make(chan error, 1)
	go func() {
		ctx, cancel := context.WithTimeout(context.Background(), 30*time.Second)
		defer cancel()
		joinDone <- joiner.JoinCluster(ctx, tc.urls[0], nil)
	}()
	select {
	case <-parked:
	case <-time.After(10 * time.Second):
		t.Fatal("steward never reached join.announced")
	}

	status, body := post(t, tc.urls[0]+"/v1/cluster/leave", map[string]any{"id": "n3"}, nil)
	if status != http.StatusServiceUnavailable {
		t.Fatalf("leave behind a stuck join returned %d, want 503: %s", status, body)
	}
	if !strings.Contains(string(body), "steward busy") {
		t.Fatalf("leave error should name the busy steward, got: %s", body)
	}

	release()
	if err := <-joinDone; err != nil {
		t.Fatalf("join: %v", err)
	}
}
