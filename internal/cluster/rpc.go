package cluster

import (
	"bytes"
	"context"
	"encoding/json"
	"errors"
	"fmt"
	"io"
	"math/rand"
	"net/http"
	"time"

	"repro/internal/metrics"
	"repro/internal/obs"
	"repro/internal/obs/span"
)

// Peer RPC rides the same HTTP JSON stack the public API uses, hardened
// for the federation path: every call carries a per-call timeout, is
// retried a bounded number of times with jittered exponential backoff on
// transport errors and 5xx responses, and carries an idempotency key so
// a retry that races its predecessor cannot double-apply (prepare,
// commit and abort are all idempotent on their key server-side).

// headerForwarded marks a request already routed by a peer, so the
// receiver treats it as node-local and never re-forwards (no loops).
const headerForwarded = "X-Rota-Forwarded"

// headerIdempotency carries the logical call's idempotency key, for log
// correlation on the receiving side.
const headerIdempotency = "X-Rota-Idempotency-Key"

// httpStatusError is a non-2xx response that reached us intact: the
// request was received and refused, so it is not retried (except 5xx,
// handled by the retry loop).
type httpStatusError struct {
	status int
	body   string
}

func (e *httpStatusError) Error() string {
	return fmt.Sprintf("peer returned %d: %s", e.status, e.body)
}

// rpcClient is the shared retrying transport for all peer calls.
type rpcClient struct {
	http        *http.Client
	timeout     time.Duration // per attempt
	retries     int           // additional attempts after the first
	backoffBase time.Duration // first retry's backoff (doubles per attempt)
	backoffCap  time.Duration // backoff ceiling
	obs         *obs.Observer
	spans       *span.Store
}

// rpcOptions carries the tunable half of the client; zero fields take
// the defaults (2s timeout, 2 retries, 25ms→400ms backoff, the
// process-default transport).
type rpcOptions struct {
	timeout     time.Duration
	retries     int
	backoffBase time.Duration
	backoffCap  time.Duration
	transport   http.RoundTripper // e.g. a fault.Network wrapper; nil = default
}

func newRPCClient(opts rpcOptions, o *obs.Observer, spans *span.Store) *rpcClient {
	if opts.timeout <= 0 {
		opts.timeout = 2 * time.Second
	}
	if opts.retries < 0 {
		opts.retries = 0
	}
	if opts.backoffBase <= 0 {
		opts.backoffBase = 25 * time.Millisecond
	}
	if opts.backoffCap <= 0 {
		opts.backoffCap = 400 * time.Millisecond
	}
	if opts.backoffCap < opts.backoffBase {
		opts.backoffCap = opts.backoffBase
	}
	return &rpcClient{
		// The client timeout is a backstop; each attempt's context is
		// the real per-call deadline.
		http:        &http.Client{Timeout: 2 * opts.timeout, Transport: opts.transport},
		timeout:     opts.timeout,
		retries:     opts.retries,
		backoffBase: opts.backoffBase,
		backoffCap:  opts.backoffCap,
		obs:         o,
		spans:       spans,
	}
}

// backoff sleeps before retry attempt i (1-based) with ±50% jitter,
// respecting ctx.
func (c *rpcClient) backoff(ctx context.Context, i int) error {
	base := c.backoffBase << (i - 1)
	if base > c.backoffCap || base <= 0 { // <=0: shift overflow
		base = c.backoffCap
	}
	d := base/2 + time.Duration(rand.Int63n(int64(base)))
	select {
	case <-time.After(d):
		return nil
	case <-ctx.Done():
		return ctx.Err()
	}
}

// retryable reports whether an attempt's failure is worth another try:
// transport errors (the peer may not have seen the request) and 5xx
// responses (the peer is briefly unhealthy). 4xx verdicts are final,
// and so is the caller's own cancellation — the requester is gone, so
// another attempt could only succeed on nobody's behalf.
func retryable(err error) bool {
	var se *httpStatusError
	if errors.As(err, &se) {
		return se.status >= 500
	}
	if errors.Is(err, context.Canceled) {
		return false
	}
	return true // transport-level failure (including per-attempt timeout)
}

// attemptLoop runs one logical call: up to 1+retries attempts with
// jittered backoff. It returns the number of attempts made and the LAST
// attempt's error — never a bare ctx.Err() that would mask the peer's
// actual failure. Once the caller's context is done, no further
// attempts are made: a retry the caller cannot consume is futile.
func (c *rpcClient) attemptLoop(ctx context.Context, method, url string, body []byte, out any, headers map[string]string) (status int, data []byte, attempts int, err error) {
	for attempt := 0; attempt <= c.retries; attempt++ {
		if attempt > 0 {
			if berr := c.backoff(ctx, attempt); berr != nil {
				// The caller went away mid-backoff. Keep the real attempt
				// failure as the error chain; the abandonment is a note,
				// not the verdict.
				err = fmt.Errorf("cluster: retry abandoned (%v): %w", berr, err)
				return
			}
			c.obs.Log("rpc.retry",
				"trace", obs.Trace(ctx), "url", url, "attempt", attempt, "error", err)
		}
		attempts++
		// Each attempt is its own span (a retry is new work, not the same
		// work again); the receiving peer's handler span parents onto the
		// attempt that actually reached it.
		actx, asp := c.spans.Start(ctx, span.KindRPC)
		asp.Attr("path", url)
		asp.Attr("attempt", attempt)
		status, data, err = c.once(actx, method, url, body, out, headers)
		if err != nil {
			asp.SetStatus(span.StatusError)
			asp.Attr("error", err)
		}
		asp.End()
		if err == nil || !retryable(err) {
			return
		}
		if ctx.Err() != nil {
			// The caller's deadline passed during the attempt; surface the
			// attempt's own failure rather than burning futile retries.
			return
		}
	}
	return
}

// call POSTs (or GETs, with a nil body) one peer endpoint, decoding a
// 2xx JSON response into out. It records the logical call — duration
// across all attempts, outcome, retries used — into rec.
func (c *rpcClient) call(ctx context.Context, method, url string, body []byte, out any, headers map[string]string, rec *metrics.RPCStats) error {
	start := time.Now()
	_, _, attempts, err := c.attemptLoop(ctx, method, url, body, out, headers)
	if rec != nil {
		timedOut := errors.Is(err, context.DeadlineExceeded)
		rec.Observe(time.Since(start), err == nil, timedOut, attempts-1)
	}
	return err
}

// proxy forwards a request body to a peer and returns the raw response
// (status + body) so the caller can relay it verbatim.
func (c *rpcClient) proxy(ctx context.Context, url string, body []byte, headers map[string]string, rec *metrics.RPCStats) (int, []byte, error) {
	start := time.Now()
	status, data, attempts, err := c.attemptLoop(ctx, http.MethodPost, url, body, nil, headers)
	if rec != nil {
		timedOut := errors.Is(err, context.DeadlineExceeded)
		rec.Observe(time.Since(start), err == nil, timedOut, attempts-1)
	}
	var se *httpStatusError
	if errors.As(err, &se) {
		// The peer answered; relay its verdict rather than wrapping it.
		return se.status, []byte(se.body), nil
	}
	return status, data, err
}

// once runs a single attempt under the per-call timeout.
func (c *rpcClient) once(ctx context.Context, method, url string, body []byte, out any, headers map[string]string) (int, []byte, error) {
	actx, cancel := context.WithTimeout(ctx, c.timeout)
	defer cancel()
	var rd io.Reader
	if body != nil {
		rd = bytes.NewReader(body)
	}
	req, err := http.NewRequestWithContext(actx, method, url, rd)
	if err != nil {
		return 0, nil, err
	}
	if body != nil {
		req.Header.Set("Content-Type", "application/json")
	}
	// Every outgoing peer RPC carries the originating request's trace ID,
	// so one admission is correlatable across coordinator and
	// participants.
	if id := obs.Trace(ctx); id != "" {
		req.Header.Set(obs.HeaderTraceID, id)
	}
	// And the current span's ID, so the peer's spans join our tree.
	span.Inject(ctx, req.Header)
	for k, v := range headers {
		req.Header.Set(k, v)
	}
	resp, err := c.http.Do(req)
	if err != nil {
		return 0, nil, err
	}
	defer resp.Body.Close()
	data, err := io.ReadAll(io.LimitReader(resp.Body, 1<<20))
	if err != nil {
		return 0, nil, err
	}
	if resp.StatusCode < 200 || resp.StatusCode > 299 {
		return resp.StatusCode, data, &httpStatusError{status: resp.StatusCode, body: string(bytes.TrimSpace(data))}
	}
	if out != nil {
		if err := json.Unmarshal(data, out); err != nil {
			return resp.StatusCode, data, fmt.Errorf("cluster: %s returned unparsable body: %w", url, err)
		}
	}
	return resp.StatusCode, data, nil
}
