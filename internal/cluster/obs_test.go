package cluster

import (
	"net/http"
	"strings"
	"testing"

	"repro/internal/obs"
	"repro/internal/server"
)

// TestClusterTraceCorrelation drives one federated admission through a
// 3-node cluster with an explicit trace ID and asserts the same ID is
// logged on the coordinator and on both two-phase participants.
func TestClusterTraceCorrelation(t *testing.T) {
	tc := newTestCluster(t, 3, 1, 4, 1000, 50)

	const trace = "cluster-trace-42"
	job := spanningJob(t, "span-trace", tc.peers[0].Locations[0], tc.peers[1].Locations[0], 1000)
	// Submitted to n3, which owns none of the footprint: n3 coordinates,
	// n1 and n2 participate over HTTP.
	status, body := post(t, tc.urls[2]+"/v1/admit", job, map[string]string{obs.HeaderTraceID: trace})
	if status != http.StatusOK || !strings.Contains(string(body), `"admit":true`) {
		t.Fatalf("federated admit: %d %s", status, body)
	}

	for i, role := range []string{"participant n1", "participant n2", "coordinator n3"} {
		if !strings.Contains(tc.logs[i].String(), "trace="+trace) {
			t.Errorf("%s never logged trace %s:\n%s", role, trace, tc.logs[i].String())
		}
	}
	for _, i := range []int{0, 1} {
		log := tc.logs[i].String()
		if !strings.Contains(log, "event=twophase.prepare") || !strings.Contains(log, "event=twophase.commit") {
			t.Errorf("participant n%d missing two-phase events:\n%s", i+1, log)
		}
	}
	if !strings.Contains(tc.logs[2].String(), "event=coordinate.verdict") {
		t.Errorf("coordinator missing verdict event:\n%s", tc.logs[2].String())
	}
}

// TestClusterMetricsEndpoint scrapes a node's /metrics after federated
// traffic: one scrape must carry both layers' families.
func TestClusterMetricsEndpoint(t *testing.T) {
	tc := newTestCluster(t, 2, 1, 4, 1000, 50)

	job := spanningJob(t, "span-scrape", tc.peers[0].Locations[0], tc.peers[1].Locations[0], 1000)
	if status, body := post(t, tc.urls[0]+"/v1/admit", job, nil); status != http.StatusOK {
		t.Fatalf("federated admit: %d %s", status, body)
	}

	resp, err := http.Get(tc.urls[0] + "/metrics")
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	m, err := obs.ParseMetrics(resp.Body)
	if err != nil {
		t.Fatal(err)
	}
	checks := map[string]float64{
		"rota_cluster_peers":                             2,
		"rota_cluster_coordinations_total":               1,
		"rota_cluster_coord_admitted_total":              1,
		`rota_cluster_peer_rpc_retries_total{peer="n2"}`: 0,
	}
	for key, want := range checks {
		if got, ok := m[key]; !ok || got != want {
			t.Errorf("scraped %s = %v, %v; want %v", key, got, ok, want)
		}
	}
	// The embedded server's families ride the same scrape.
	if _, ok := m["rota_ledger_shards"]; !ok {
		t.Error("server-layer families missing from cluster scrape")
	}
	if v, ok := m[`rota_cluster_peer_rpc_total{peer="n2",outcome="ok"}`]; !ok || v < 1 {
		t.Errorf("peer RPC ok counter = %v, %v", v, ok)
	}
	if _, ok := m[`rota_http_requests_total{layer="cluster",endpoint="admit",class="2xx"}`]; !ok {
		t.Error("cluster-layer endpoint family missing")
	}
}

// TestNodeStatsCarriesServerStats guards the /v1/stats composition the
// exposition mirrors.
func TestNodeStatsCarriesServerStats(t *testing.T) {
	tc := newTestCluster(t, 2, 1, 4, 1000, 50)
	st := tc.nodes[0].Stats()
	if st.Node != "n1" || st.Shards != 1 {
		t.Fatalf("stats = node %q, shards %d", st.Node, st.Shards)
	}
	var _ server.StatsResponse = st.StatsResponse
}
