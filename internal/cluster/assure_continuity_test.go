package cluster

import (
	"bytes"
	"context"
	"encoding/json"
	"net/http"
	"testing"
	"time"

	"repro/internal/obs/assure"
	"repro/internal/resource"
)

// Promise-continuity tests: an admitted job's deadline promise must
// follow the job across ownership moves. On a graceful handoff the old
// owner's view turns transferred and the new owner adopts it; on a
// crash-and-promote the standby adopts from its gossip-fed shadow. In
// neither case may the promise end up orphaned or violated — the
// Theorem-4 witness the job was admitted on is still valid, only the
// node enforcing it changed.

// assureView fetches a node's in-process promise view for one job.
func assureView(t *testing.T, nd *Node, job string) (assure.Promise, bool) {
	t.Helper()
	asr := nd.Server().Assure()
	if asr == nil {
		t.Fatalf("%s has no promise ledger wired", nd.ID())
	}
	return asr.Lookup(job)
}

// requireContinuity asserts the new owner carries the promise forward:
// found, adopted, and in a healthy (active or kept) state.
func requireContinuity(t *testing.T, nd *Node, job string) assure.Promise {
	t.Helper()
	p, ok := assureView(t, nd, job)
	if !ok {
		t.Fatalf("%s has no promise for %s after the move", nd.ID(), job)
	}
	switch p.State {
	case assure.StateActive, assure.StateKept:
	default:
		t.Fatalf("%s reports %s as %q after the move, want active or kept", nd.ID(), job, p.State)
	}
	if !p.Adopted {
		t.Fatalf("%s's promise for %s is not marked adopted", nd.ID(), job)
	}
	return p
}

// TestPromiseContinuityAcrossHandoff: jobs admitted before a join keep
// their promises through the steward-driven handoff. The joiner adopts
// them (never re-observing slack-at-admit), the old owners mark them
// transferred, and nothing is orphaned or violated anywhere.
func TestPromiseContinuityAcrossHandoff(t *testing.T) {
	tc := newTestCluster(t, 2, 2, 8, 100000, 50)
	// The join will move l2 and l3; seed one job on each, looking up the
	// incumbent owner from the partition (PartitionLocations interleaves).
	ownerOf := func(loc resource.Location) int {
		for i, p := range tc.peers {
			for _, l := range p.Locations {
				if l == loc {
					return i
				}
			}
		}
		t.Fatalf("no owner for %s", loc)
		return -1
	}
	moved := map[string]struct {
		owner int
		loc   resource.Location
	}{
		"moves-with-l2": {ownerOf("l2"), "l2"},
		"moves-with-l3": {ownerOf("l3"), "l3"},
	}
	for name, at := range moved {
		status, verdict := admitVerdict(t, tc.urls[at.owner], pinnedJob(t, name, at.loc, 100000))
		if status != http.StatusOK || !verdict.Admit {
			t.Fatalf("seeding %s: status %d, verdict %+v", name, status, verdict)
		}
		if p, ok := assureView(t, tc.nodes[at.owner], name); !ok || p.State != assure.StateActive {
			t.Fatalf("no active promise for %s on its owner before the join", name)
		}
	}

	joiner, _ := newJoiner(t, "n3")
	ctx, cancel := context.WithTimeout(context.Background(), 10*time.Second)
	defer cancel()
	if err := joiner.JoinCluster(ctx, tc.urls[0], []resource.Location{"l2", "l3"}); err != nil {
		t.Fatalf("join: %v", err)
	}

	for name, at := range moved {
		requireContinuity(t, joiner, name)
		// The old owner's disposition is transferred — the job left with
		// its location, it was not lost.
		if old, ok := assureView(t, tc.nodes[at.owner], name); !ok || old.State != assure.StateTransferred {
			t.Fatalf("old owner %s reports %s as %q, want transferred", tc.peers[at.owner].ID, name, old.State)
		}
	}
	for _, nd := range append(append([]*Node{}, tc.nodes...), joiner) {
		st := nd.Server().Assure().Stats()
		if st.Violated != 0 || st.Orphaned != 0 {
			t.Fatalf("%s: %d violated, %d orphaned after a clean handoff", nd.ID(), st.Violated, st.Orphaned)
		}
	}
}

// TestPromiseContinuityAcrossPromotion kills a primary mid-window and
// force-leaves it: the promoted standby must adopt the in-flight
// promise from its shadow and report it active or kept — never
// orphaned — and the survivors' ledgers must show zero violations.
func TestPromiseContinuityAcrossPromotion(t *testing.T) {
	tc := newTestCluster(t, 3, 1, 8, 100000, 50)
	victim := 1
	loc := tc.peers[victim].Locations[0]
	standbyID := tc.nodes[0].Table().StandbyOf(loc)
	if standbyID == "" || standbyID == tc.peers[victim].ID {
		t.Fatalf("no usable standby for %s: %q", loc, standbyID)
	}
	var standby *Node
	var survivor string
	for i, p := range tc.peers {
		if p.ID == standbyID {
			standby = tc.nodes[i]
		} else if i != victim {
			survivor = tc.urls[i]
		}
	}

	const job = "promise-survives-crash"
	status, verdict := admitVerdict(t, tc.urls[victim], pinnedJob(t, job, loc, 100000))
	if status != http.StatusOK || !verdict.Admit {
		t.Fatalf("seeding the victim: status %d, verdict %+v", status, verdict)
	}
	if p, ok := assureView(t, tc.nodes[victim], job); !ok || p.State != assure.StateActive {
		t.Fatalf("victim holds no active promise for %s before the crash", job)
	}

	// Wait for gossip to ship the shadow, then crash the primary
	// mid-window: the deadline is far away, the promise is in flight.
	deadline := time.Now().Add(5 * time.Second)
	for {
		standby.smu.Lock()
		_, ok := standby.shadows[loc]
		standby.smu.Unlock()
		if ok {
			break
		}
		if time.Now().After(deadline) {
			t.Fatalf("no shadow of %s reached standby %s within 5s", loc, standbyID)
		}
		time.Sleep(20 * time.Millisecond)
	}
	_ = tc.httpSrvs[victim].Close()
	body, _ := json.Marshal(map[string]any{"id": tc.peers[victim].ID, "force": true})
	resp, err := http.Post(survivor+"/v1/cluster/leave", "application/json", bytes.NewReader(body))
	if err != nil {
		t.Fatal(err)
	}
	resp.Body.Close()
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("force leave returned %d", resp.StatusCode)
	}

	p := requireContinuity(t, standby, job)
	if p.State == assure.StateOrphaned {
		t.Fatalf("promoted standby orphaned the promise: %+v", p)
	}
	for i, nd := range tc.nodes {
		if i == victim {
			continue
		}
		st := nd.Server().Assure().Stats()
		if st.Violated != 0 || st.Orphaned != 0 {
			t.Fatalf("%s: %d violated, %d orphaned after the failover", nd.ID(), st.Violated, st.Orphaned)
		}
	}

	// New admissions on the failed-over location land promises on the
	// promoted owner, freshly observed (not adopted).
	status, verdict = admitVerdict(t, survivor, pinnedJob(t, "post-promotion", loc, 100000))
	if status != http.StatusOK || !verdict.Admit {
		t.Fatalf("post-promotion admit: status %d, verdict %+v", status, verdict)
	}
	fresh, ok := assureView(t, standby, "post-promotion")
	if !ok || fresh.State != assure.StateActive || fresh.Adopted {
		t.Fatalf("post-promotion promise = %+v, want a fresh active promise on the standby", fresh)
	}
}
