package cluster

import (
	"context"
	"encoding/json"
	"errors"
	"fmt"
	"net/http"
	"sort"
	"strings"
	"time"

	"repro/internal/health"
	"repro/internal/membership"
	"repro/internal/obs/span"
	"repro/internal/resource"
	"repro/internal/server"
)

// Automatic failure detection and self-healing failover.
//
// Gossip receipt is the heartbeat: every /v1/cluster/gossip arrival
// feeds the φ-accrual detector, so no extra channel or message type is
// needed. Each gossip tick this node also evaluates the detector
// (healthTick) and advertises its current suspects in its own gossip —
// that advertisement is an *accusation*, and the accusation ledger is
// what turns local suspicion into cluster-level consensus:
//
//   - a peer is only auto-evicted when a quorum (strict majority of
//     the FULL roster, victim included) independently accuses it
//     within a freshness window, so one node with a broken link cannot
//     evict a healthy peer, no minority of a partition can ever evict
//     across the cut, and an exact even split stalls on both sides
//     instead of producing two live clusters;
//
//   - the steward of the eviction is deterministic — the warm standby
//     of the victim's first owned location (the node already holding
//     its shadows), falling back to the lowest-ID healthy survivor —
//     so concurrent evictions of the same victim collapse onto one
//     node instead of racing;
//
//   - the eviction itself is the existing force-leave choreography
//     (standby promotion from gossip-fed shadows), now initiated
//     automatically; the forward-only registry epoch is the fence that
//     keeps a partitioned-but-alive victim from split-braining: when it
//     comes back, every member answers its gossip with 421, and it
//     drops its stale state and rejoins as a fresh member.
//
// Crash-safety of the steward itself is covered by the intent journal
// (membership.Intent): a steward records its full membership plan the
// moment the choreography starts and gossips it until the final table
// lands. Any survivor that still sees an open intent from a steward it
// has declared dead repairs the plan deterministically — probe each
// move's target for what actually arrived, keep the moves that
// completed, promote what a force-leave still needs, and publish the
// final table itself (repairIntent).

// stage fires the test gate hook at a named protocol point.
func (n *Node) stage(stage, key string) {
	if n.gate != nil {
		n.gate(stage, key)
	}
}

// acquireSteward takes the 1-slot membership semaphore, queueing behind
// an in-flight join/leave for at most stewardWait before failing with a
// clear error (satellite: a graceful leave racing a join must queue,
// not fail opaquely).
func (n *Node) acquireSteward(ctx context.Context) error {
	select {
	case n.mmu <- struct{}{}:
		return nil
	default:
	}
	timer := time.NewTimer(n.stewardWait)
	defer timer.Stop()
	select {
	case n.mmu <- struct{}{}:
		return nil
	case <-timer.C:
		return fmt.Errorf("cluster: steward busy with another membership change (waited %s)", n.stewardWait)
	case <-ctx.Done():
		return fmt.Errorf("cluster: steward wait abandoned: %w", ctx.Err())
	case <-n.shutdownCh:
		return errors.New("cluster: draining, not stewarding membership changes")
	}
}

func (n *Node) releaseSteward() { <-n.mmu }

// Intent journal bookkeeping. The node's own open intent lives in the
// same map as intents heard from peers, keyed by steward ID.

// setOwnIntent journals this node's choreography plan.
func (n *Node) setOwnIntent(it *membership.Intent) {
	n.imu.Lock()
	n.intents[n.self.ID] = it.Clone()
	n.imu.Unlock()
}

// setOwnIntentStage checkpoints the stage the choreography reached.
func (n *Node) setOwnIntentStage(stage string) {
	n.imu.Lock()
	if it := n.intents[n.self.ID]; it != nil {
		it.Stage = stage
	}
	n.imu.Unlock()
}

// clearOwnIntent closes this node's journal entry (choreography done).
func (n *Node) clearOwnIntent() {
	n.imu.Lock()
	delete(n.intents, n.self.ID)
	n.imu.Unlock()
}

// ownIntent returns a copy of this node's open intent for gossip.
func (n *Node) ownIntent() *membership.Intent {
	n.imu.Lock()
	defer n.imu.Unlock()
	return n.intents[n.self.ID].Clone()
}

// intentFor returns a copy of the last open intent heard from steward.
func (n *Node) intentFor(steward string) *membership.Intent {
	n.imu.Lock()
	defer n.imu.Unlock()
	return n.intents[steward].Clone()
}

// clearIntentFor drops a stored intent (repaired, or finished by its
// steward).
func (n *Node) clearIntentFor(steward string) {
	n.imu.Lock()
	delete(n.intents, steward)
	n.imu.Unlock()
}

// observeGossip is the health half of gossip receipt: heartbeat the
// sender, record its accusations, and journal its open intent. The
// sender is already verified to be a roster member.
func (n *Node) observeGossip(g Gossip, now time.Time) {
	n.detector.Observe(g.Node, now)
	n.hmu.Lock()
	for _, victim := range g.Suspects {
		if victim == n.self.ID || victim == g.Node {
			continue
		}
		acc, ok := n.accusals[victim]
		if !ok {
			acc = make(map[string]time.Time)
			n.accusals[victim] = acc
		}
		acc[g.Node] = now
	}
	n.hmu.Unlock()
	if g.Intent != nil {
		if g.Intent.Steward == g.Node && g.Intent.Validate() == nil &&
			g.Intent.TargetEpoch > n.reg.Epoch() {
			n.imu.Lock()
			n.intents[g.Node] = g.Intent.Clone()
			n.imu.Unlock()
		}
	} else {
		// The sender stewards nothing right now; if we hold an intent of
		// theirs whose target the sender's own epoch has reached, it
		// finished (the final-table broadcast to us was lost).
		n.imu.Lock()
		if it := n.intents[g.Node]; it != nil && g.Epoch >= it.TargetEpoch {
			delete(n.intents, g.Node)
		}
		n.imu.Unlock()
	}
}

// accusalWindow is how long a gossip accusation stays fresh: three
// gossip intervals, matching how quickly a recovered peer's gossip
// stops carrying the accusation.
func (n *Node) accusalWindow() time.Duration {
	if n.gossipEvery <= 0 {
		return 3 * time.Second
	}
	return 3 * n.gossipEvery
}

// healthTick runs on the gossip goroutine: evaluate the detector over
// the current roster, refresh the advertised suspect set, and — when
// auto-eviction is enabled and a quorum agrees a peer is dead — start
// the failover if this node is the deterministic steward.
func (n *Node) healthTick(ctx context.Context, now time.Time) {
	tbl := n.reg.Snapshot()
	roster := make(map[string]bool, len(tbl.Members))
	for _, m := range tbl.Members {
		roster[m.ID] = true
	}
	// Forget departed peers so their stale histories cannot accuse.
	for _, id := range n.detector.Peers() {
		if !roster[id] {
			n.detector.Forget(id)
		}
	}
	// Register every roster member with the detector, so one we have
	// never heard from (a joiner announced by a steward that died
	// before the joiner ever gossiped) accrues bootstrap suspicion
	// instead of holding φ = 0 forever — with the full-roster quorum
	// an unjudgeable member could otherwise wedge every eviction.
	for _, m := range tbl.Members {
		if m.ID != n.self.ID {
			n.detector.Expect(m.ID, now)
		}
	}
	assessments := n.detector.Evaluate(now)
	var suspects []string
	dead := make([]health.Assessment, 0, 1)
	for _, a := range assessments {
		if !roster[a.Peer] || a.State == health.Alive {
			continue
		}
		suspects = append(suspects, a.Peer)
		if a.State == health.Dead {
			dead = append(dead, a)
		}
	}
	window := n.accusalWindow()
	n.hmu.Lock()
	n.suspects = suspects
	for victim, acc := range n.accusals {
		for accuser, at := range acc {
			if now.Sub(at) > window || !roster[accuser] || !roster[victim] {
				delete(acc, accuser)
			}
		}
		if len(acc) == 0 {
			delete(n.accusals, victim)
		}
	}
	n.hmu.Unlock()
	n.suspectedNow.Store(uint64(len(suspects)))

	// Quorum eviction needs at least 3 members: with 2, the full-roster
	// quorum is 2 and the single survivor can never muster it, so the
	// guard only spares pointless bookkeeping.
	if !n.autoEvict || len(tbl.Members) < 3 || n.draining() {
		return
	}
	bad := make(map[string]bool, len(suspects)+1)
	for _, id := range suspects {
		bad[id] = true
	}
	for _, a := range dead {
		victim := a.Peer
		accusers := map[string]bool{n.self.ID: true} // our detector holds the victim Dead
		n.hmu.Lock()
		for accuser, at := range n.accusals[victim] {
			if accuser != n.self.ID && now.Sub(at) <= window {
				accusers[accuser] = true
			}
		}
		n.hmu.Unlock()
		// Quorum over the FULL roster, victim included. Counting only
		// survivors (len-1) looks natural but is unsafe: in an even N|N
		// split of a 2N-node cluster each half has N accusers against a
		// survivor-majority of N, so both halves would evict the other
		// and admit against the same capacity. Against N/2+1 an exact
		// half can never win — a tied split stalls safely (operator
		// force-leave remains available) while every single-failure case
		// still evicts.
		quorum := len(tbl.Members)/2 + 1
		if len(accusers) < quorum {
			continue
		}
		// The member whose membership the dead steward was choreographing
		// cannot steward the eviction: a leave victim would have to
		// publish a table excluding itself (which its own registry
		// refuses), and a joiner's own half-applied membership is exactly
		// what the repair must adjudicate — its failed JoinCluster call
		// has returned an error and it may abandon the join entirely.
		// Every quorum member holds the same gossiped intent, so the
		// exclusion is as deterministic as the rest of the election.
		if it := n.intentFor(victim); it != nil {
			bad[it.Member.ID] = true
		}
		steward := n.electSteward(tbl, victim, bad, accusers)
		if steward != n.self.ID {
			continue
		}
		n.hmu.Lock()
		already := n.evicting[victim]
		if !already {
			n.evicting[victim] = true
		}
		n.hmu.Unlock()
		if already {
			continue
		}
		n.obs.Log("health.evict_start",
			"node", n.self.ID, "victim", victim, "phi", a.Phi,
			"accusers", len(accusers), "quorum", quorum, "suspect_for_ms", a.SuspectFor.Milliseconds())
		go n.autoEvictVictim(victim)
	}
}

// electSteward picks the deterministic failover steward for victim:
// the warm standby of the victim's first (sorted) owned location — the
// node already holding its shadows — when that standby itself accuses
// the victim, falling back to the lowest-ID healthy accuser. Only
// accusers are eligible: a member whose detector does not hold the
// victim dead (a fresh joiner still inside its φ bootstrap window, or
// the minority side of a partition) would be elected and then never
// act, stalling the failover forever. Every quorum member computes the
// same answer from the same table and (converged) accusal view, so
// concurrent evictions collapse onto one steward; a transient
// divergence at worst elects two, and the forward-only epoch CAS makes
// the second force-leave a harmless no-op.
func (n *Node) electSteward(tbl *membership.Table, victim string, bad, accusers map[string]bool) string {
	good := func(id string) bool {
		_, member := tbl.Member(id)
		return member && id != victim && !bad[id] && accusers[id]
	}
	for _, loc := range tbl.Locations(victim) {
		if sb := tbl.StandbyOf(loc); sb != "" && good(sb) {
			return sb
		}
		break // only the first owned location elects; fall back otherwise
	}
	for _, m := range tbl.Members { // sorted by ID
		if good(m.ID) {
			return m.ID
		}
	}
	return ""
}

// autoEvictVictim runs one automatic failover: acquire the steward
// semaphore, re-verify the victim is still a dead member, repair any
// membership plan the victim left open (it may itself have died
// mid-steward), then drive the standard force-leave choreography.
func (n *Node) autoEvictVictim(victim string) {
	defer func() {
		n.hmu.Lock()
		delete(n.evicting, victim)
		n.hmu.Unlock()
	}()
	ctx, cancel := context.WithTimeout(context.Background(), 3*n.stewardWait)
	defer cancel()
	if err := n.acquireSteward(ctx); err != nil {
		n.obs.Log("health.evict_blocked", "node", n.self.ID, "victim", victim, "error", err)
		return
	}
	defer n.releaseSteward()
	tbl := n.reg.Snapshot()
	if _, ok := tbl.Member(victim); !ok {
		return // someone else already evicted it
	}
	if n.detector.Phi(victim, time.Now()) < n.detector.Options().EvictPhi {
		return // it came back while we queued for the semaphore
	}
	if it := n.intentFor(victim); it != nil {
		if err := n.repairIntent(ctx, it); err != nil {
			n.obs.Log("health.repair_failed", "node", n.self.ID, "steward", victim, "error", err)
		}
	}
	next, _, err := n.stewardLeave(ctx, membership.LeaveRequest{ID: victim, Force: true})
	if err != nil {
		n.obs.Log("health.evict_failed", "node", n.self.ID, "victim", victim, "error", err)
		return
	}
	n.autoEvictions.Add(1)
	n.detector.Forget(victim)
	n.hmu.Lock()
	delete(n.accusals, victim)
	n.hmu.Unlock()
	n.clearIntentFor(victim)
	n.obs.Log("health.evicted",
		"node", n.self.ID, "victim", victim, "epoch", next.Epoch)
}

// ownedResponse answers GET /v1/cluster/owned: which of the queried
// locations this node's ledger currently owns. Intent repair probes a
// move's target with it to learn whether the handoff completed.
type ownedResponse struct {
	Owned []string `json:"owned"`
}

func (n *Node) handleOwned(w http.ResponseWriter, r *http.Request) {
	var owned []string
	for _, part := range strings.Split(r.URL.Query().Get("locs"), ",") {
		if part = strings.TrimSpace(part); part != "" {
			if n.srv.Ledger().Owned(resource.Location(part)) {
				owned = append(owned, part)
			}
		}
	}
	writeJSON(w, http.StatusOK, ownedResponse{Owned: owned})
}

// rpcOwned probes which of locs a peer's ledger owns.
func (n *Node) rpcOwned(ctx context.Context, m membership.Member, locs []resource.Location) (map[resource.Location]bool, error) {
	parts := make([]string, len(locs))
	for i, loc := range locs {
		parts[i] = string(loc)
	}
	var resp ownedResponse
	ps := n.peerFor(ownerRef{id: m.ID, url: m.URL})
	url := m.URL + "/v1/cluster/owned?locs=" + strings.Join(parts, ",")
	if err := n.client.call(ctx, http.MethodGet, url, nil, &resp, nil, ps.rpc); err != nil {
		return nil, fmt.Errorf("cluster: owned probe on %s: %w", m.ID, err)
	}
	out := make(map[resource.Location]bool, len(resp.Owned))
	for _, loc := range resp.Owned {
		out[resource.Location(loc)] = true
	}
	return out, nil
}

// repairIntent finishes (or rolls back) a dead steward's partially
// applied membership plan. The rule is "commit what completed": probe
// each planned move's target for what actually arrived, keep exactly
// those moves in the final table, promote what a force-leave still
// needs, and publish. The forward-only epoch CAS makes repair
// idempotent — if anyone (including a resurrected steward) already
// published the target epoch, every apply below is a no-op.
//
// Caller must hold the steward semaphore.
func (n *Node) repairIntent(ctx context.Context, it *membership.Intent) error {
	cur := n.reg.Snapshot()
	if cur.Epoch >= it.TargetEpoch {
		n.clearIntentFor(it.Steward)
		return nil // already finished (by the steward or a prior repair)
	}
	sctx, sp := n.spans.Start(ctx, span.KindRepair)
	defer sp.End()
	sp.Attr("steward", it.Steward)
	sp.Attr("member", it.Member.ID)
	sp.Attr("kind", it.Kind)
	sp.Attr("stage", it.Stage)
	var final *membership.Table
	var executed []membership.Move
	var err error
	switch it.Kind {
	case membership.IntentJoin:
		final, executed, err = n.repairJoin(sctx, cur, it)
	case membership.IntentLeave:
		final, executed, err = n.repairLeave(sctx, cur, it)
	default:
		err = fmt.Errorf("cluster: unknown intent kind %q", it.Kind)
	}
	if err != nil {
		sp.SetStatus(span.StatusError)
		sp.Attr("error", err)
		return err
	}
	if final != nil {
		if !n.applyTable(final) && n.reg.Epoch() < final.Epoch {
			sp.SetStatus(span.StatusError)
			return fmt.Errorf("cluster: repaired table (epoch %d) rejected locally", final.Epoch)
		}
		n.broadcastTable(sctx, final)
	}
	n.intentRepairs.Add(1)
	n.clearIntentFor(it.Steward)
	sp.Attr("epoch", it.TargetEpoch)
	sp.Attr("moves", len(executed))
	n.obs.Log("health.intent_repaired",
		"node", n.self.ID, "steward", it.Steward, "kind", it.Kind,
		"member", it.Member.ID, "stage", it.Stage, "epoch", it.TargetEpoch, "moves", len(executed))
	return nil
}

// repairJoin completes an interrupted join: ensure the roster
// announcement is applied, probe the joiner for which planned handoffs
// actually landed, and build the final table recording exactly those.
func (n *Node) repairJoin(ctx context.Context, cur *membership.Table, it *membership.Intent) (*membership.Table, []membership.Move, error) {
	if cur.Epoch+1 == it.AnnounceEpoch {
		// The steward died before its announce broadcast reached us;
		// re-derive and apply it so the final table's epoch lines up.
		announce := cur.Joined(it.Member, nil, nil)
		if n.applyTable(announce) {
			n.broadcastTable(ctx, announce)
		}
		cur = n.reg.Snapshot()
	}
	if cur.Epoch != it.AnnounceEpoch {
		return nil, nil, fmt.Errorf("cluster: cannot repair join of %s: table at epoch %d, intent announced at %d",
			it.Member.ID, cur.Epoch, it.AnnounceEpoch)
	}
	// Probe regardless of the journaled stage: the steward may have
	// started a handoff before its moving-stage checkpoint gossiped out.
	var executed []membership.Move
	if len(it.Moves) > 0 {
		locs := make([]resource.Location, len(it.Moves))
		for i, mv := range it.Moves {
			locs[i] = mv.Loc
		}
		arrived, err := n.rpcOwned(ctx, it.Member, locs)
		if err != nil {
			// The joiner is unreachable too: keep the roster change (it is
			// already announced) but record no moves — the old owners still
			// hold the data.
			n.obs.Log("health.repair_probe_failed", "member", it.Member.ID, "error", err)
		}
		for _, mv := range it.Moves {
			if arrived[mv.Loc] {
				executed = append(executed, mv)
			}
		}
	}
	gained := make(map[resource.Location]bool, len(executed))
	for _, mv := range executed {
		gained[mv.Loc] = true
	}
	var pins []resource.Location
	for _, p := range it.Pins {
		loc := resource.Location(p)
		if owner, ok := cur.OwnerOf(loc); gained[loc] || (ok && owner == it.Member.ID) {
			pins = append(pins, loc)
		}
	}
	return cur.Joined(it.Member, executed, pins), executed, nil
}

// repairLeave completes an interrupted (force-)leave: probe each move's
// target, promote the groups that have not adopted their locations yet,
// and publish the departure table. Graceful leaves are force-completed
// — the dead steward cannot tell us how far the handoffs got, and the
// targets are the victims' warm standbys either way.
func (n *Node) repairLeave(ctx context.Context, cur *membership.Table, it *membership.Intent) (*membership.Table, []membership.Move, error) {
	victim := it.Member.ID
	if _, ok := cur.Member(victim); !ok {
		return nil, nil, fmt.Errorf("cluster: cannot repair leave: %s is no longer a member at epoch %d", victim, cur.Epoch)
	}
	if cur.Epoch != it.AnnounceEpoch {
		return nil, nil, fmt.Errorf("cluster: cannot repair leave of %s: table at epoch %d, intent announced at %d",
			victim, cur.Epoch, it.AnnounceEpoch)
	}
	for _, grp := range groupMovesByTo(it.Moves) {
		if grp.to == "" {
			continue
		}
		toM, ok := cur.Member(grp.to)
		if !ok {
			continue
		}
		need := grp.locs
		if grp.to == n.self.ID {
			need = nil
			for _, loc := range grp.locs {
				if !n.srv.Ledger().Owned(loc) {
					need = append(need, loc)
				}
			}
		} else if arrived, err := n.rpcOwned(ctx, toM, grp.locs); err == nil {
			need = nil
			for _, loc := range grp.locs {
				if !arrived[loc] {
					need = append(need, loc)
				}
			}
		}
		if len(need) == 0 {
			continue
		}
		var perr error
		if grp.to == n.self.ID {
			perr = n.promoteLocal(ctx, need, it.TargetEpoch)
		} else {
			perr = n.rpcPromote(ctx, toM, need)
		}
		if perr != nil {
			n.obs.Log("health.repair_promote_failed", "to", grp.to, "error", perr)
		}
	}
	return cur.Left(victim, it.Moves), it.Moves, nil
}

// maybeRejoin reacts to a 421 fence on our own gossip: we were evicted
// (typically while partitioned). Drop all stale cluster state and
// rejoin as a fresh member — the clean alternative to split-braining.
// Each via is tried in turn: the caller may only have a table to go on,
// and some of its members may be dead too.
func (n *Node) maybeRejoin(vias ...string) {
	if len(vias) == 0 || n.draining() || !n.rejoining.CompareAndSwap(false, true) {
		return
	}
	go n.rejoin(vias)
}

// rejoin demotes this node to a blank joiner and re-enters the cluster
// through the first reachable via. Everything epoch-fenced is
// discarded: owned locations
// (their committed state lives on with the promoted standbys), routing
// overlays, shadows, detector histories, accusations, journaled
// intents. Reservations committed here after the cluster evicted us are
// lost by design — the fenced side of a partition loses, which is
// exactly what keeps both sides from promising the same capacity.
func (n *Node) rejoin(vias []string) {
	defer n.rejoining.Store(false)
	ctx, cancel := context.WithTimeout(context.Background(), 3*n.stewardWait)
	defer cancel()
	sctx, sp := n.spans.Start(ctx, span.KindRejoin)
	defer sp.End()
	sp.Attr("via", vias[0])

	n.flowMu.Lock()
	dropped := n.srv.Ledger().OwnedLocations()
	// Every promise still open here dies with the fenced state: the jobs
	// leave with their locations (the promoted standbys adopted them), so
	// the terminal outcome on this node is evicted-with-job, not the
	// `transferred` a deliberate handoff would record.
	if evicted := n.srv.Assure().EvictAll(n.srv.Ledger().Now()); evicted > 0 {
		n.obs.Log("assure.evicted_with_job", "node", n.self.ID, "promises", evicted)
	}
	n.srv.Ledger().DropLocations(dropped)
	n.omu.Lock()
	n.pendingOwned = make(map[resource.Location]uint64)
	n.handedOff = make(map[resource.Location]ownerRef)
	n.learned = make(map[resource.Location]ownerRef)
	n.movedKeys = make(map[string]ownerRef)
	n.omu.Unlock()
	n.flowMu.Unlock()
	n.smu.Lock()
	n.shadows = make(map[resource.Location]server.LocationExport)
	n.smu.Unlock()
	for _, id := range n.detector.Peers() {
		n.detector.Forget(id)
	}
	n.hmu.Lock()
	n.accusals = make(map[string]map[string]time.Time)
	n.suspects = nil
	n.hmu.Unlock()
	n.imu.Lock()
	n.intents = make(map[string]*membership.Intent)
	n.imu.Unlock()
	n.suspectedNow.Store(0)

	sp.Attr("dropped", len(dropped))
	var err error
	for _, via := range vias {
		if err = n.JoinCluster(sctx, via, nil); err == nil {
			n.rejoins.Add(1)
			n.obs.Log("health.rejoined",
				"node", n.self.ID, "via", via, "dropped", len(dropped), "epoch", n.reg.Epoch())
			return
		}
		n.obs.Log("health.rejoin_via_failed", "node", n.self.ID, "via", via, "error", err)
	}
	sp.SetStatus(span.StatusError)
	sp.Attr("error", err)
	n.obs.Log("health.rejoin_failed", "node", n.self.ID, "vias", len(vias), "error", err)
}

// pushGossip broadcasts this node's gossip immediately (off-tick), so a
// freshly journaled intent reaches survivors before any handoff starts
// instead of waiting out the gossip interval.
func (n *Node) pushGossip(ctx context.Context) {
	body, err := json.Marshal(n.buildGossip())
	if err != nil {
		return
	}
	for _, ps := range n.peersSnapshot() {
		if ps.isSelf {
			continue
		}
		_ = n.client.call(ctx, http.MethodPost, ps.URL+"/v1/cluster/gossip", body, nil, nil, ps.rpc)
	}
}

// PeerHealth is one peer's failure-detector verdict as surfaced by
// /v1/stats.
type PeerHealth struct {
	Peer         string  `json:"peer"`
	Phi          float64 `json:"phi"`
	State        string  `json:"state"`
	Samples      int     `json:"samples"`
	SuspectForMS int64   `json:"suspect_for_ms,omitempty"`
}

// HealthStatus is the /v1/stats health section: detector configuration
// plus the live per-peer assessments.
type HealthStatus struct {
	SuspectPhi float64      `json:"suspect_phi"`
	EvictPhi   float64      `json:"evict_phi"`
	AutoEvict  bool         `json:"auto_evict"`
	Peers      []PeerHealth `json:"peers,omitempty"`
}

// healthStatus assembles the stats section. Evaluate's transitions are
// deterministic in elapsed time, so a stats scrape advancing the state
// machine is indistinguishable from the next healthTick doing it.
func (n *Node) healthStatus() HealthStatus {
	opts := n.detector.Options()
	st := HealthStatus{SuspectPhi: opts.SuspectPhi, EvictPhi: opts.EvictPhi, AutoEvict: n.autoEvict}
	for _, a := range n.detector.Evaluate(time.Now()) {
		ph := PeerHealth{Peer: a.Peer, Phi: a.Phi, State: a.State.String(), Samples: a.Samples}
		if a.SuspectFor > 0 {
			ph.SuspectForMS = a.SuspectFor.Milliseconds()
		}
		st.Peers = append(st.Peers, ph)
	}
	sort.Slice(st.Peers, func(i, j int) bool { return st.Peers[i].Peer < st.Peers[j].Peer })
	return st
}
