// Open-system churn: computing on peer-owned resources that join and
// leave — the paper's target environment. All capacity arrives through
// the resource acquisition rule carrying explicit departure times;
// Theorem 4 admits new computations into exactly the capacity that would
// otherwise expire unused.
//
// The second half injects dishonest peers (resources that renege on their
// advertised departure time) to quantify how much of the assurance rests
// on the paper's join-with-departure-time assumption.
package main

import (
	"fmt"
	"log"
	"os"

	rota "repro"
	"repro/internal/metrics"
)

func main() {
	locs := []rota.Location{"peer1", "peer2", "peer3", "peer4"}
	const horizon = 800

	jobs, err := rota.GenerateWorkload(rota.WorkloadConfig{
		Seed:             7,
		Locations:        locs,
		NumJobs:          150,
		MeanInterarrival: float64(horizon) / 150,
		ActorsMin:        1,
		ActorsMax:        2,
		StepsMin:         1,
		StepsMax:         3,
		SendProb:         0.15,
		MigrateProb:      0,
		EvalWeightMax:    2,
		SlackFactor:      3,
	})
	if err != nil {
		log.Fatal(err)
	}

	table := metrics.NewTable("peer-owned resources: ROTA admission under churn",
		"churn-gap", "renege-p", "joins", "admitted", "on-time", "missed", "violations", "utilization")

	for _, gap := range []float64{3, 6, 12} {
		for _, renege := range []float64{0, 0.25} {
			trace, err := rota.GenerateChurn(rota.ChurnConfig{
				Seed:             11,
				Locations:        locs,
				Horizon:          horizon,
				MeanInterarrival: gap,
				LeaseMin:         10,
				LeaseMax:         80,
				RateMin:          1,
				RateMax:          4,
				LinkProb:         0.3,
				RenegeProb:       renege,
			})
			if err != nil {
				log.Fatal(err)
			}
			res, err := rota.Simulate(rota.SimConfig{
				Policy:   rota.RotaPolicy(),
				Executor: rota.ExecPlanned,
			}, jobs, trace)
			if err != nil {
				log.Fatal(err)
			}
			table.AddRow(gap, renege, len(trace.Joins), res.Admitted,
				res.CompletedOnTime, res.Missed, res.Violations, res.Utilization())
		}
	}
	table.AddNote("renege-p=0: honest churn — the assurance is unconditional (0 missed, 0 violations)")
	table.AddNote("renege-p>0: misses appear only because peers broke their advertised leases")
	table.Render(os.Stdout)

	// A single-step view of Theorem 4's "harvest the expiring resources":
	fmt.Println("\nTheorem 4 in one step:")
	theta := rota.NewSet(rota.NewTerm(rota.UnitsRate(2), rota.CPUAt("peer1"), rota.NewInterval(0, 10)))
	state := rota.NewState(theta, 0)
	first, err := mkJob("first", "a1", 0, 10)
	if err != nil {
		log.Fatal(err)
	}
	state, plan, err := rota.Admit(state, first)
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("  admitted %q consuming ticks up to t=%d\n", "first", plan.Finish)
	free, err := state.FreeResources()
	if err != nil {
		log.Fatal(err)
	}
	fmt.Println("  resources still expiring unused:", free)
	second, err := mkJob("second", "a2", 0, 10)
	if err != nil {
		log.Fatal(err)
	}
	if _, _, err := rota.Admit(state, second); err == nil {
		fmt.Println("  second job admitted into exactly that expiring capacity")
	}
}

func mkJob(name string, a rota.ActorName, start, deadline rota.Time) (rota.Distributed, error) {
	comp, err := rota.Realize(rota.PaperCost(), a, rota.Evaluate(a, "peer1", 1))
	if err != nil {
		return rota.Distributed{}, err
	}
	return rota.NewDistributed(name, start, deadline, comp)
}
