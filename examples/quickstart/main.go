// Quickstart: the ROTA basics end to end — resource terms and sets
// (§III), a costed actor computation (§IV), a Theorem-3 deadline check
// with its witness schedule, and a Figure-1 satisfaction query on the
// executed path.
package main

import (
	"fmt"
	"log"

	rota "repro"
)

func main() {
	// --- Resources in time and space (§III) -------------------------------
	// 2 cpu/tick at l1 for 20 ticks, and a 1 unit/tick l1→l2 link that
	// only exists during (4,12) — an open-system resource that will leave.
	theta := rota.NewSet(
		rota.NewTerm(rota.UnitsRate(2), rota.CPUAt("l1"), rota.NewInterval(0, 20)),
		rota.NewTerm(rota.UnitsRate(1), rota.Link("l1", "l2"), rota.NewInterval(4, 12)),
	)
	fmt.Println("available resources Θ =", theta)

	// Resource-set algebra: union simplifies, complement subtracts.
	extra := rota.NewSet(rota.NewTerm(rota.UnitsRate(3), rota.CPUAt("l1"), rota.NewInterval(10, 16)))
	fmt.Println("Θ ∪ extra           =", theta.Union(extra))

	// --- A computation, represented by its resource needs (§IV) ----------
	// evaluate (8 cpu) → send (4 network l1→l2) → evaluate (8 cpu), costed
	// with the paper's Φ constants.
	comp, err := rota.Realize(rota.PaperCost(), "a1",
		rota.Evaluate("a1", "l1", 1),
		rota.Send("a1", "l1", "a2", "l2", 1),
		rota.Evaluate("a1", "l1", 1),
	)
	if err != nil {
		log.Fatal(err)
	}
	fmt.Println("computation Γ       =", comp)

	// --- Theorem 3: can Γ meet deadline 20 starting at 0? ----------------
	plan, err := rota.MeetDeadline(theta, comp, 0, 20)
	if err != nil {
		log.Fatal("deadline cannot be assured:", err)
	}
	fmt.Printf("ASSURED: finishes by t=%d, break points %v\n",
		plan.Finish, plan.Breaks["a1"])

	// The same computation with deadline 8 is infeasible: the link only
	// opens at t=4 and the final 8 cpu cannot fit before t=8.
	if _, err := rota.MeetDeadline(theta, comp, 0, 8); err != nil {
		fmt.Println("deadline 8 correctly refused:", err)
	}

	// --- Executing the committed path and querying the logic -------------
	state := rota.NewState(theta, 0)
	dist, err := rota.NewDistributed("job", 0, 20, comp)
	if err != nil {
		log.Fatal(err)
	}
	state, _, err = rota.Admit(state, dist)
	if err != nil {
		log.Fatal(err)
	}
	res := rota.RunState(state, 20, 1)
	fmt.Printf("executed: job completed at t=%d with %d violations\n",
		res.Completed["job"], len(res.Violations))

	// Figure 1 semantics: would another 8-cpu requirement have fit in the
	// resources this path let expire?
	f := rota.SatisfySimple{Req: rota.Simple{
		Amounts: rota.Amounts{rota.CPUAt("l1"): rota.UnitsQty(8)},
		Window:  rota.NewInterval(0, 20),
	}}
	ok, err := rota.Eval(res.Path, 0, f)
	if err != nil {
		log.Fatal(err)
	}
	fmt.Println("σ,0 ⊨ satisfy(ρ[8 cpu](0,20)) =", ok)
}
