// Temporal verification: using ROTA as a logic rather than a scheduler.
// We build an open system, materialize Definition 2's tree of possible
// evolutions with the bounded explorer, and answer path-quantified
// questions — "is there an evolution where …" (◇ over branches) and
// "does … hold however the system evolves" (□ over branches) — with
// machine-checked witnesses and counterexamples.
package main

import (
	"fmt"
	"log"

	rota "repro"
)

func main() {
	// A small open system: 2 cpu/tick at the edge for 10 ticks, and a
	// burst of 4 cpu/tick joining for ticks (4,8).
	base := rota.NewSet(rota.NewTerm(rota.UnitsRate(2), rota.CPUAt("edge"), rota.NewInterval(0, 10)))
	burst := rota.NewSet(rota.NewTerm(rota.UnitsRate(4), rota.CPUAt("edge"), rota.NewInterval(4, 8)))

	// One pending job that may or may not be admitted along the way.
	comp, err := rota.Realize(rota.PaperCost(), "worker", rota.Evaluate("worker", "edge", 1))
	if err != nil {
		log.Fatal(err)
	}
	comp.Steps[0].Amounts = rota.Amounts{rota.CPUAt("edge"): rota.UnitsQty(12)} // 12 cpu of work
	job, err := rota.NewDistributed("batch", 0, 10, comp)
	if err != nil {
		log.Fatal(err)
	}

	ex := &rota.Explorer{
		Joins:   map[rota.Time]rota.Set{4: burst},
		Pending: []rota.Distributed{job},
		Horizon: 10,
	}

	// Q1 (existential): is there an evolution on which a *second* 16-cpu
	// request could still be satisfied? (Only if "batch" is never
	// admitted, or admitted against the burst.)
	bigAsk := rota.SatisfySimple{Req: rota.Simple{
		Amounts: rota.Amounts{rota.CPUAt("edge"): rota.UnitsQty(16)},
		Window:  rota.NewInterval(0, 10),
	}}
	ok, witness, err := ex.ExistsPath(rota.NewState(base, 0), bigAsk)
	if err != nil {
		log.Fatal(err)
	}
	fmt.Println("◇ (16 cpu still available):", ok)
	if ok {
		admitted := false
		for _, tr := range witness.Steps {
			if tr.Computation == "batch" {
				admitted = true
			}
		}
		fmt.Println("  witness admits batch:", admitted)
	}

	// Q2 (universal): however the system evolves, a 37-cpu request never
	// fits (total capacity incl. the burst is 20+16 = 36).
	tooBig := rota.SatisfySimple{Req: rota.Simple{
		Amounts: rota.Amounts{rota.CPUAt("edge"): rota.UnitsQty(37)},
		Window:  rota.NewInterval(0, 10),
	}}
	holds, counter, err := ex.ForAllPaths(rota.NewState(base, 0), rota.Not{F: tooBig})
	if err != nil {
		log.Fatal(err)
	}
	fmt.Println("□ ¬(37 cpu available):", holds)
	if !holds {
		fmt.Println("  counterexample:", counter)
	}

	// Q3: but 36 cpu IS reachable — on the branch that admits nothing.
	exactly := rota.SatisfySimple{Req: rota.Simple{
		Amounts: rota.Amounts{rota.CPUAt("edge"): rota.UnitsQty(36)},
		Window:  rota.NewInterval(0, 10),
	}}
	ok, _, err = ex.ExistsPath(rota.NewState(base, 0), exactly)
	if err != nil {
		log.Fatal(err)
	}
	fmt.Println("◇ (36 cpu available):", ok)

	// Q4: a text-syntax query on the canonical committed path (the
	// rotacheck -formula machinery, via the facade).
	state := rota.NewState(base, 0)
	state, _, err = rota.Admit(state, job)
	if err != nil {
		log.Fatal(err)
	}
	state, _ = rota.Acquire(state, burst) // the join, known up front here
	res := rota.RunState(state, 10, 1)
	onPath := rota.And{
		L: rota.SatisfyConcurrent{Req: rota.ConcurrentOf(mustJob(t2(), 8))},
		R: rota.Not{F: tooBig},
	}
	verdict, err := rota.Eval(res.Path, 0, onPath)
	if err != nil {
		log.Fatal(err)
	}
	fmt.Println("committed path ⊨ (another 8-cpu job fits ∧ ¬37cpu):", verdict)
}

// t2 builds the second job's computation.
func t2() rota.Computation {
	c, err := rota.Realize(rota.PaperCost(), "extra", rota.Evaluate("extra", "edge", 1))
	if err != nil {
		log.Fatal(err)
	}
	return c
}

func mustJob(c rota.Computation, deadline rota.Time) rota.Distributed {
	d, err := rota.NewDistributed("extra-job", 0, deadline, c)
	if err != nil {
		log.Fatal(err)
	}
	return d
}
