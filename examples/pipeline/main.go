// Interacting actors — the paper's §VI extension, implemented. A
// scatter-gather pipeline: a coordinator scatters work to two mappers,
// each mapper computes and sends its result back, and the coordinator can
// only reduce after *both* replies arrive (blocking waits).
//
// The paper's §IV model cannot express this (actors must be independent);
// §VI sketches the fix — "break down an actor's computation into
// sequences of independent computations separated by states in which it
// is waiting" — which is exactly the Workflow type: segments plus wait
// edges. The demo shows (1) a witness schedule that respects the waits,
// and (2) why ignoring the waits (the §IV approximation) underestimates
// the finish time and can over-promise deadlines.
package main

import (
	"fmt"
	"log"

	rota "repro"
)

func main() {
	// Cluster: coordinator node plus two worker nodes; modest links.
	theta := rota.NewSet(
		rota.NewTerm(rota.UnitsRate(2), rota.CPUAt("coord"), rota.NewInterval(0, 40)),
		rota.NewTerm(rota.UnitsRate(3), rota.CPUAt("w1"), rota.NewInterval(0, 40)),
		rota.NewTerm(rota.UnitsRate(3), rota.CPUAt("w2"), rota.NewInterval(0, 40)),
		rota.NewTerm(rota.UnitsRate(2), rota.Link("coord", "w1"), rota.NewInterval(0, 40)),
		rota.NewTerm(rota.UnitsRate(2), rota.Link("coord", "w2"), rota.NewInterval(0, 40)),
		rota.NewTerm(rota.UnitsRate(2), rota.Link("w1", "coord"), rota.NewInterval(0, 40)),
		rota.NewTerm(rota.UnitsRate(2), rota.Link("w2", "coord"), rota.NewInterval(0, 40)),
	)

	// Coordinator, segment 0: scatter (two sends).
	scatter, err := rota.Realize(rota.PaperCost(), "coord",
		rota.Send("coord", "coord", "map1", "w1", 1),
		rota.Send("coord", "coord", "map2", "w2", 1),
	)
	if err != nil {
		log.Fatal(err)
	}
	// Coordinator, segment 1: reduce — BLOCKED until both replies.
	reduce, err := rota.Realize(rota.PaperCost(), "coord",
		rota.Evaluate("coord", "coord", 1),
	)
	if err != nil {
		log.Fatal(err)
	}
	reduce.Steps[0].Amounts = rota.Amounts{rota.CPUAt("coord"): rota.UnitsQty(10)}

	mapper := func(name rota.ActorName, node rota.Location) rota.Computation {
		m, err := rota.Realize(rota.PaperCost(), name,
			rota.Evaluate(name, node, 1),
			rota.Send(name, node, "coord", "coord", 1),
		)
		if err != nil {
			log.Fatal(err)
		}
		m.Steps[0].Amounts = rota.Amounts{rota.CPUAt(node): rota.UnitsQty(18)}
		return m
	}

	coordRef := func(i int) rota.SegmentRef { return rota.SegmentRef{Actor: "coord", Segment: i} }
	m1Ref := rota.SegmentRef{Actor: "map1", Segment: 0}
	m2Ref := rota.SegmentRef{Actor: "map2", Segment: 0}

	w, err := rota.NewWorkflow("scatter-gather", 0, 30,
		[]rota.Segmented{
			{Actor: "coord", Segments: []rota.Computation{scatter, reduce}},
			{Actor: "map1", Segments: []rota.Computation{mapper("map1", "w1")}},
			{Actor: "map2", Segments: []rota.Computation{mapper("map2", "w2")}},
		},
		[]rota.WaitEdge{
			{From: coordRef(0), To: m1Ref}, // mappers wait for the scatter
			{From: coordRef(0), To: m2Ref},
			{From: m1Ref, To: coordRef(1)}, // reduce waits for both maps
			{From: m2Ref, To: coordRef(1)},
		})
	if err != nil {
		log.Fatal(err)
	}
	fmt.Println("workflow:", w)

	plan, err := rota.FeasibleWorkflow(theta, w)
	if err != nil {
		log.Fatal("deadline cannot be assured:", err)
	}
	if err := rota.VerifyWorkflowPlan(theta, w, plan); err != nil {
		log.Fatal("plan failed verification:", err)
	}
	fmt.Printf("ASSURED by t=%d (deadline 30). Segment timeline:\n", plan.Finish)
	for _, ref := range []rota.SegmentRef{coordRef(0), m1Ref, m2Ref, coordRef(1)} {
		fmt.Printf("  %-8v runs (%d → %d)\n", ref, plan.StartAt[ref], plan.DoneAt[ref])
	}

	// The §IV approximation treats the same actors as independent — and
	// promises an earlier, unachievable finish.
	flat, err := rota.NewWorkflow("flat", 0, 30, w.Actors, nil)
	if err != nil {
		log.Fatal(err)
	}
	flatPlan, err := rota.FeasibleWorkflow(theta, flat)
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("\nignoring the waits (§IV model) promises t=%d — optimistic by %d ticks,\n",
		flatPlan.Finish, plan.Finish-flatPlan.Finish)
	fmt.Println("because the reduce would start before the map replies exist.")

	// Tighten the deadline until the waits make it infeasible.
	for _, d := range []rota.Time{30, 20, 12} {
		wd, err := rota.NewWorkflow("scatter-gather", 0, d, w.Actors, w.Edges)
		if err != nil {
			log.Fatal(err)
		}
		if _, err := rota.FeasibleWorkflow(theta, wd); err != nil {
			fmt.Printf("deadline %2d: REFUSED (%v)\n", d, err)
		} else {
			fmt.Printf("deadline %2d: assured\n", d)
		}
	}
}
