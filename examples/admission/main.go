// Admission control for a small shared cluster: the scenario the paper's
// introduction motivates. A stream of deadline-constrained multi-actor
// jobs arrives at a three-node cluster; we run the identical stream
// through four admission policies and compare what each assures.
//
// The headline contrast: naive-total admits order-sensitive jobs that can
// never be scheduled (the §III caveat), so it misses deadlines it
// promised; rota's admissions are backed by witness schedules and never
// miss.
package main

import (
	"fmt"
	"log"
	"os"

	rota "repro"
	"repro/internal/metrics"
)

func main() {
	locs := []rota.Location{"node-a", "node-b", "node-c"}
	const horizon = 600

	jobs, err := rota.GenerateWorkload(rota.WorkloadConfig{
		Seed:             2025,
		Locations:        locs,
		NumJobs:          160,
		MeanInterarrival: float64(horizon) / 160,
		ActorsMin:        1,
		ActorsMax:        3,
		StepsMin:         2,
		StepsMax:         5,
		SendProb:         0.3, // plenty of cpu→network→cpu ordering
		MigrateProb:      0.05,
		EvalWeightMax:    2,
		SlackFactor:      2,
	})
	if err != nil {
		log.Fatal(err)
	}

	// Static capacity: 3 cpu/tick per node plus a unit-rate full mesh.
	var base rota.Set
	for _, src := range locs {
		base.Add(rota.NewTerm(rota.UnitsRate(3), rota.CPUAt(src), rota.NewInterval(0, horizon)))
		for _, dst := range locs {
			if src != dst {
				base.Add(rota.NewTerm(rota.UnitsRate(1), rota.Link(src, dst), rota.NewInterval(0, horizon)))
			}
		}
	}
	trace := rota.ChurnTrace{Base: base}

	table := metrics.NewTable("cluster admission: identical stream, four policies",
		"policy", "admitted", "rejected", "on-time", "missed", "miss-rate", "goodput")
	type runSpec struct {
		policy   rota.Policy
		executor rota.SimExecutor
	}
	for _, spec := range []runSpec{
		{rota.RotaPolicy(), rota.ExecPlanned},
		{rota.NaiveTotalPolicy(), rota.ExecGreedyEDF},
		{rota.EDFFeasiblePolicy(), rota.ExecGreedyEDF},
		{rota.AlwaysAdmitPolicy(), rota.ExecGreedyEDF},
	} {
		res, err := rota.Simulate(rota.SimConfig{Policy: spec.policy, Executor: spec.executor}, jobs, trace)
		if err != nil {
			log.Fatal(err)
		}
		table.AddRow(res.Policy, res.Admitted, res.Rejected,
			res.CompletedOnTime, res.Missed, res.MissRate(), res.GoodputRatio())
	}
	table.AddNote("an admission under rota is an assurance: its miss count is structurally zero")
	table.Render(os.Stdout)

	fmt.Println("\nWhy naive-total over-admits — a three-line demonstration:")
	demoOrderSensitivity()
}

// demoOrderSensitivity shows one concrete job naive aggregate reasoning
// gets wrong.
func demoOrderSensitivity() {
	theta := rota.NewSet(
		rota.NewTerm(rota.UnitsRate(2), rota.Link("node-a", "node-b"), rota.NewInterval(0, 2)),
		rota.NewTerm(rota.UnitsRate(4), rota.CPUAt("node-a"), rota.NewInterval(2, 6)),
	)
	comp, err := rota.Realize(rota.PaperCost(), "x",
		rota.Evaluate("x", "node-a", 1),            // needs cpu FIRST
		rota.Send("x", "node-a", "y", "node-b", 1), // then network
	)
	if err != nil {
		log.Fatal(err)
	}
	need := comp.TotalAmounts()
	fmt.Printf("  supply: %v\n  demand: %v — totals fit inside (0,6)\n", theta, need)
	if _, err := rota.MeetDeadline(theta, comp, 0, 6); err != nil {
		fmt.Println("  rota verdict: REFUSED —", err)
		fmt.Println("  (the network lease expires before the cpu phase can finish)")
	}
}
