// Choosing between courses of action — the use the paper's conclusion
// highlights: "this can be useful for computations choosing between
// various courses of action, allowing them to avoid attempting infeasible
// pursuits."
//
// An actor at an overloaded edge node must finish 40 units of evaluation
// by a deadline. It can (a) stay, (b) migrate to a big-core server and
// compute there, or (c) split: compute half locally while a created
// helper computes the rest remotely. Each alternative is expressed as a
// computation and checked with MeetDeadline; the actor picks the earliest
// assured finish rather than discovering failure at the deadline.
package main

import (
	"fmt"
	"log"
	"sort"

	rota "repro"
)

func main() {
	// The environment: edge is busy (only 1 cpu/tick free), the server
	// has 6 cpu/tick but the uplink is slow (1 unit/tick) and opens late.
	theta := rota.NewSet(
		rota.NewTerm(rota.UnitsRate(1), rota.CPUAt("edge"), rota.NewInterval(0, 60)),
		rota.NewTerm(rota.UnitsRate(6), rota.CPUAt("server"), rota.NewInterval(0, 60)),
		rota.NewTerm(rota.UnitsRate(1), rota.Link("edge", "server"), rota.NewInterval(4, 60)),
	)
	const deadline = 30
	fmt.Println("environment Θ =", theta)
	fmt.Println("deadline      =", deadline)
	fmt.Println()

	type alternative struct {
		name string
		dist rota.Distributed
	}
	var alts []alternative

	// (a) Stay at the edge: 40 units at 1 cpu/tick.
	stay, err := rota.Realize(rota.PaperCost(), "worker",
		rota.Evaluate("worker", "edge", 5)) // weight 5 ⇒ 8+... see cost model
	if err != nil {
		log.Fatal(err)
	}
	// Use explicit amounts for clarity: exactly 40 cpu at the edge.
	stay.Steps[0].Amounts = rota.Amounts{rota.CPUAt("edge"): rota.UnitsQty(40)}
	stayDist, err := rota.NewDistributed("stay", 0, deadline, stay)
	if err != nil {
		log.Fatal(err)
	}
	alts = append(alts, alternative{"stay at edge", stayDist})

	// (b) Migrate (8 state units over the slow link), then compute fast.
	migrate, err := rota.Realize(rota.PaperCost(), "worker",
		rota.Migrate("worker", "edge", "server", 8),
		rota.Evaluate("worker", "server", 1),
	)
	if err != nil {
		log.Fatal(err)
	}
	migrate.Steps[1].Amounts = rota.Amounts{rota.CPUAt("server"): rota.UnitsQty(40)}
	migDist, err := rota.NewDistributed("migrate", 0, deadline, migrate)
	if err != nil {
		log.Fatal(err)
	}
	alts = append(alts, alternative{"migrate to server", migDist})

	// (c) Split: 20 units locally; create a helper (5 cpu), ship it the
	// task (send over the link), helper does 20 units on the server.
	local, err := rota.Realize(rota.PaperCost(), "worker",
		rota.Create("worker", "edge", "helper"),
		rota.Send("worker", "edge", "helper", "server", 2),
		rota.Evaluate("worker", "edge", 1),
	)
	if err != nil {
		log.Fatal(err)
	}
	local.Steps[2].Amounts = rota.Amounts{rota.CPUAt("edge"): rota.UnitsQty(20)}
	helper, err := rota.Realize(rota.PaperCost(), "helper",
		rota.Evaluate("helper", "server", 1))
	if err != nil {
		log.Fatal(err)
	}
	helper.Steps[0].Amounts = rota.Amounts{rota.CPUAt("server"): rota.UnitsQty(20)}
	splitDist, err := rota.NewDistributed("split", 0, deadline, local, helper)
	if err != nil {
		log.Fatal(err)
	}
	alts = append(alts, alternative{"split edge+server", splitDist})

	// Evaluate every course of action before committing to any.
	type verdict struct {
		name   string
		finish rota.Time
		ok     bool
		reason string
	}
	var verdicts []verdict
	for _, alt := range alts {
		state := rota.NewState(theta, 0)
		_, plan, err := rota.Admit(state, alt.dist)
		if err != nil {
			verdicts = append(verdicts, verdict{name: alt.name, reason: err.Error()})
			continue
		}
		verdicts = append(verdicts, verdict{name: alt.name, finish: plan.Finish, ok: true})
	}
	sort.SliceStable(verdicts, func(i, j int) bool {
		if verdicts[i].ok != verdicts[j].ok {
			return verdicts[i].ok
		}
		return verdicts[i].finish < verdicts[j].finish
	})
	for _, v := range verdicts {
		if v.ok {
			fmt.Printf("  %-20s ASSURED by t=%d\n", v.name, v.finish)
		} else {
			fmt.Printf("  %-20s infeasible (%s)\n", v.name, v.reason)
		}
	}
	if best := verdicts[0]; best.ok {
		fmt.Printf("\nchosen course of action: %s (finishes %d ticks before the deadline)\n",
			best.name, deadline-best.finish)
	} else {
		fmt.Println("\nno course of action can be assured — do not start")
	}
}
