package rota

// The benchmark harness: one benchmark per evaluation artifact (see
// DESIGN.md's experiment index and EXPERIMENTS.md for recorded output).
// The ROTA paper publishes no measured tables or figures — E1/E2 cover
// its two formal artifacts (Table I, the §III/§IV/Fig.1 worked examples)
// and E3–E9 are the constructed evaluation. Each benchmark runs the
// corresponding experiment end to end, so `go test -bench=.` regenerates
// every row; run `go run ./cmd/rotabench` for the human-readable tables.

import (
	"io"
	"testing"

	"repro/internal/experiments"
	"repro/internal/metrics"
)

// benchTable runs an experiment builder b.N times, keeping the harness
// honest: each iteration regenerates the full table.
func benchTable(b *testing.B, build func() *metrics.Table) {
	b.Helper()
	for i := 0; i < b.N; i++ {
		t := build()
		if t.NumRows() == 0 {
			b.Fatal("experiment produced no rows")
		}
		t.RenderCSV(io.Discard)
	}
}

// BenchmarkE1AllenRelations regenerates paper Table I with algebra
// validation.
func BenchmarkE1AllenRelations(b *testing.B) {
	benchTable(b, experiments.E1AllenRelations)
}

// BenchmarkE2Semantics regenerates the §III/§IV/Figure-1 worked examples.
func BenchmarkE2Semantics(b *testing.B) {
	benchTable(b, experiments.E2Semantics)
}

// BenchmarkE3CheckerSoundness validates admitted ⇒ on-time over random
// scenarios (reduced trial count per iteration; the full run is in
// EXPERIMENTS.md).
func BenchmarkE3CheckerSoundness(b *testing.B) {
	cfg := experiments.DefaultE3()
	cfg.Trials = 40
	benchTable(b, func() *metrics.Table { return experiments.E3CheckerSoundness(cfg) })
}

// BenchmarkE4AdmissionSweep compares the four policies across offered
// load (one low and one overloaded point per iteration).
func BenchmarkE4AdmissionSweep(b *testing.B) {
	cfg := experiments.DefaultE4()
	cfg.Horizon = 200
	cfg.Loads = []float64{0.5, 1.5}
	benchTable(b, func() *metrics.Table { return experiments.E4AdmissionSweep(cfg) })
}

// BenchmarkE5Churn runs the open-system churn grid (one churn rate, two
// renege rates per iteration).
func BenchmarkE5Churn(b *testing.B) {
	cfg := experiments.DefaultE5()
	cfg.Horizon = 200
	cfg.ChurnInterarrivals = []float64{4}
	benchTable(b, func() *metrics.Table { return experiments.E5Churn(cfg) })
}

// BenchmarkE6Scalability times the Theorem-4 decision across state
// sizes.
func BenchmarkE6Scalability(b *testing.B) {
	cfg := experiments.DefaultE6()
	cfg.TermCounts = []int{8, 64}
	cfg.ActorCounts = []int{1, 4}
	cfg.Reps = 5
	benchTable(b, func() *metrics.Table { return experiments.E6Scalability(cfg) })
}

// BenchmarkE7DeltaT runs the Δt granularity ablation.
func BenchmarkE7DeltaT(b *testing.B) {
	cfg := experiments.DefaultE7()
	cfg.Scales = []int64{1, 4}
	cfg.NumJobs = 25
	cfg.BaseHorizon = 150
	benchTable(b, func() *metrics.Table { return experiments.E7DeltaT(cfg) })
}

// BenchmarkE8Encapsulation runs the CyberOrgs encapsulation ablation.
func BenchmarkE8Encapsulation(b *testing.B) {
	cfg := experiments.DefaultE8()
	cfg.Horizon = 150
	cfg.JobsPerLocation = 6
	benchTable(b, func() *metrics.Table { return experiments.E8Encapsulation(cfg) })
}

// ---- Micro-benchmarks of the decision procedures themselves ----

// BenchmarkMeetDeadline times the Theorem-3 check on the canonical
// three-phase computation.
func BenchmarkMeetDeadline(b *testing.B) {
	theta := NewSet(
		NewTerm(UnitsRate(2), CPUAt("l1"), NewInterval(0, 64)),
		NewTerm(UnitsRate(1), Link("l1", "l2"), NewInterval(0, 64)),
	)
	comp, err := Realize(PaperCost(), "a1",
		Evaluate("a1", "l1", 1),
		Send("a1", "l1", "a2", "l2", 1),
		Evaluate("a1", "l1", 1),
	)
	if err != nil {
		b.Fatal(err)
	}
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, err := MeetDeadline(theta, comp, 0, 64); err != nil {
			b.Fatal(err)
		}
	}
}

// BenchmarkAdmit times the full Theorem-4 pipeline including plan
// verification.
func BenchmarkAdmit(b *testing.B) {
	theta := NewSet(NewTerm(UnitsRate(4), CPUAt("l1"), NewInterval(0, 1<<20)))
	comp, err := Realize(PaperCost(), "a1", Evaluate("a1", "l1", 1))
	if err != nil {
		b.Fatal(err)
	}
	dist, err := NewDistributed("job", 0, 8, comp)
	if err != nil {
		b.Fatal(err)
	}
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		state := NewState(theta, 0)
		if _, _, err := Admit(state, dist); err != nil {
			b.Fatal(err)
		}
	}
}

// BenchmarkTick times one general-transition step with an active
// commitment.
func BenchmarkTick(b *testing.B) {
	theta := NewSet(NewTerm(UnitsRate(2), CPUAt("l1"), NewInterval(0, 1<<40)))
	comp, err := Realize(PaperCost(), "a1", Evaluate("a1", "l1", 1000))
	if err != nil {
		b.Fatal(err)
	}
	comp.Steps[0].Amounts = Amounts{CPUAt("l1"): UnitsQty(1 << 30)}
	dist, err := NewDistributed("long", 0, 1<<39, comp)
	if err != nil {
		b.Fatal(err)
	}
	state, _, err := Admit(state0(theta), dist)
	if err != nil {
		b.Fatal(err)
	}
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		next, _, viols := Tick(state, 1)
		if len(viols) != 0 {
			b.Fatal("unexpected violation")
		}
		state = next
	}
}

func state0(theta Set) State {
	return NewState(theta, 0)
}

// BenchmarkE9Workflows runs the interacting-actors extension comparison.
func BenchmarkE9Workflows(b *testing.B) {
	cfg := experiments.DefaultE9()
	cfg.FanOuts = []int{2, 4}
	cfg.Trials = 15
	benchTable(b, func() *metrics.Table { return experiments.E9Workflows(cfg) })
}

// BenchmarkE10Estimation runs the Φ-estimation-error ablation.
func BenchmarkE10Estimation(b *testing.B) {
	cfg := experiments.DefaultE10()
	cfg.Trials = 40
	cfg.RelErrs = []float64{0.25}
	benchTable(b, func() *metrics.Table { return experiments.E10Estimation(cfg) })
}
