// Command rotadoctor turns flight-recorder snapshots into an incident
// report. It collects snapshots from daemon /debug/rota/flightrec
// endpoints or saved JSON files (a whole index or a single snapshot),
// merges them into one causal timeline — events ordered across nodes,
// span trees rebuilt with span.BuildTrees — and prints a human-readable
// report: what triggered on which node, the interleaved event log, and
// each cross-node trace with its critical path.
//
// Usage:
//
//	rotadoctor http://n1:8081 http://n2:8082 http://n3:8083
//	rotadoctor snapshot.json other-node.json
//	curl -s http://n1:8081/debug/rota/flightrec | rotadoctor -
package main

import (
	"encoding/json"
	"errors"
	"flag"
	"fmt"
	"io"
	"net/http"
	"os"
	"strings"
	"time"

	"repro/internal/obs/flightrec"
)

func main() {
	if err := run(os.Args[1:], os.Stdout); err != nil {
		fmt.Fprintln(os.Stderr, "rotadoctor:", err)
		os.Exit(1)
	}
}

func run(args []string, out io.Writer) error {
	fs := flag.NewFlagSet("rotadoctor", flag.ContinueOnError)
	timeline := fs.Int("timeline", 120, "max merged timeline lines to print (0 = all)")
	timeout := fs.Duration("timeout", 5*time.Second, "per-node HTTP timeout")
	asJSON := fs.Bool("json", false, "emit the merged incident as JSON instead of a report")
	if err := fs.Parse(args); err != nil {
		return err
	}
	if fs.NArg() == 0 {
		return errors.New("usage: rotadoctor [-timeline N] [-json] <url|snapshot.json|->...")
	}
	client := &http.Client{Timeout: *timeout}
	var snaps []flightrec.Snapshot
	var srcErrs []string
	for _, src := range fs.Args() {
		got, err := load(client, src)
		if err != nil {
			srcErrs = append(srcErrs, src+": "+err.Error())
			continue
		}
		snaps = append(snaps, got...)
	}
	for _, e := range srcErrs {
		fmt.Fprintln(out, "warn:", e)
	}
	if len(snaps) == 0 {
		return errors.New("no flight-recorder snapshots found in any source")
	}
	inc := flightrec.Merge(snaps)
	if *asJSON {
		enc := json.NewEncoder(out)
		enc.SetIndent("", "  ")
		return enc.Encode(inc)
	}
	inc.WriteReport(out, *timeline)
	return nil
}

// load reads snapshots from one source: a daemon base URL (fetches the
// flight-recorder index), a JSON file, or "-" for stdin. Files may hold
// an index, a bare snapshot, or an array of snapshots.
func load(client *http.Client, src string) ([]flightrec.Snapshot, error) {
	var raw []byte
	switch {
	case src == "-":
		b, err := io.ReadAll(os.Stdin)
		if err != nil {
			return nil, err
		}
		raw = b
	case strings.HasPrefix(src, "http://") || strings.HasPrefix(src, "https://"):
		url := strings.TrimSuffix(src, "/") + "/debug/rota/flightrec"
		resp, err := client.Get(url)
		if err != nil {
			return nil, err
		}
		defer resp.Body.Close()
		b, err := io.ReadAll(io.LimitReader(resp.Body, 64<<20))
		if err != nil {
			return nil, err
		}
		if resp.StatusCode != http.StatusOK {
			return nil, fmt.Errorf("%s: %s: %s", url, resp.Status, strings.TrimSpace(string(b)))
		}
		raw = b
	default:
		b, err := os.ReadFile(src)
		if err != nil {
			return nil, err
		}
		raw = b
	}
	return decode(raw)
}

// decode accepts the three shapes a source can contain. An index is
// recognized by the presence of its "snapshots" key (the daemon always
// serializes it, even empty), so a healthy node with nothing recorded
// reads as zero snapshots rather than a parse failure.
func decode(raw []byte) ([]flightrec.Snapshot, error) {
	var idx struct {
		Snapshots *[]flightrec.Snapshot `json:"snapshots"`
	}
	if err := json.Unmarshal(raw, &idx); err == nil && idx.Snapshots != nil {
		return *idx.Snapshots, nil
	}
	var many []flightrec.Snapshot
	if err := json.Unmarshal(raw, &many); err == nil && len(many) > 0 {
		return many, nil
	}
	var one flightrec.Snapshot
	if err := json.Unmarshal(raw, &one); err == nil && one.ID != "" {
		return []flightrec.Snapshot{one}, nil
	}
	return nil, errors.New("not a flight-recorder index, snapshot, or snapshot array")
}
