// Command rotasim runs one open-system simulation: a synthetic workload
// and churn trace driven through an admission policy and executor, with
// the resulting admission/miss/utilization statistics printed as a table.
//
// Usage:
//
//	rotasim -policy rota -jobs 200 -horizon 1000
//	rotasim -policy always-admit -executor greedy -load 1.5
//	rotasim -policy naive-total -renege 0.2 -seed 7
package main

import (
	"flag"
	"fmt"
	"io"
	"os"

	"repro/internal/admission"
	"repro/internal/churn"
	"repro/internal/interval"
	"repro/internal/metrics"
	"repro/internal/resource"
	"repro/internal/sim"
	tracepkg "repro/internal/trace"
	"repro/internal/workload"
)

func main() {
	if err := run(os.Args[1:], os.Stdout); err != nil {
		fmt.Fprintln(os.Stderr, "rotasim:", err)
		os.Exit(1)
	}
}

func run(args []string, out io.Writer) error {
	fs := flag.NewFlagSet("rotasim", flag.ContinueOnError)
	policyName := fs.String("policy", "rota", "admission policy: rota, rota-exhaustive, naive-total, edf-feasible, always-admit")
	executor := fs.String("executor", "", "execution model: planned or greedy (default: planned for rota, greedy otherwise)")
	seed := fs.Int64("seed", 42, "random seed for workload and churn")
	jobs := fs.Int("jobs", 150, "number of jobs to offer")
	horizon := fs.Int64("horizon", 800, "simulation horizon in ticks")
	locations := fs.Int("locations", 3, "number of locations")
	baseRate := fs.Int64("base", 2, "static cpu units/tick per location (0 disables)")
	churnGap := fs.Float64("churn", 8, "mean ticks between resource joins (0 disables churn)")
	renege := fs.Float64("renege", 0, "probability a joining resource reneges early")
	slack := fs.Float64("slack", 2.5, "deadline slack factor")
	csv := fs.Bool("csv", false, "emit CSV")
	traceFile := fs.String("trace", "", "write a JSONL event trace to this file ('-' for stdout)")
	repair := fs.Bool("repair", false, "re-plan commitments broken by reneging resources (planned executor)")
	workloadIn := fs.String("workload", "", "read the job list from a JSON file instead of generating one")
	workloadOut := fs.String("dump-workload", "", "also write the job list to this JSON file")
	if err := fs.Parse(args); err != nil {
		return err
	}

	locs := make([]resource.Location, *locations)
	for i := range locs {
		locs[i] = resource.Location(fmt.Sprintf("l%d", i+1))
	}

	var policy admission.Policy
	switch *policyName {
	case "rota":
		policy = &admission.Rota{}
	case "rota-exhaustive":
		policy = &admission.Rota{Exhaustive: true}
	case "naive-total":
		policy = admission.NewNaiveTotal()
	case "edf-feasible":
		policy = admission.NewEDFFeasible()
	case "always-admit":
		policy = admission.AlwaysAdmit{}
	default:
		return fmt.Errorf("unknown policy %q", *policyName)
	}

	exec := sim.GreedyEDF
	if *policyName == "rota" || *policyName == "rota-exhaustive" {
		exec = sim.Planned
	}
	switch *executor {
	case "":
	case "planned":
		exec = sim.Planned
	case "greedy":
		exec = sim.GreedyEDF
	default:
		return fmt.Errorf("unknown executor %q", *executor)
	}

	var jobList []workload.Job
	if *workloadIn != "" {
		f, err := os.Open(*workloadIn)
		if err != nil {
			return err
		}
		jobList, err = workload.ReadJSON(f)
		f.Close()
		if err != nil {
			return err
		}
	} else {
		var err error
		jobList, err = workload.Generate(workload.Config{
			Seed:             *seed,
			Locations:        locs,
			NumJobs:          *jobs,
			MeanInterarrival: float64(*horizon) / float64(*jobs+1),
			ActorsMin:        1,
			ActorsMax:        3,
			StepsMin:         1,
			StepsMax:         4,
			SendProb:         0.2,
			MigrateProb:      0.05,
			EvalWeightMax:    3,
			SlackFactor:      *slack,
		})
		if err != nil {
			return err
		}
	}
	if *workloadOut != "" {
		f, err := os.Create(*workloadOut)
		if err != nil {
			return err
		}
		werr := workload.WriteJSON(jobList, f)
		if cerr := f.Close(); werr == nil {
			werr = cerr
		}
		if werr != nil {
			return werr
		}
	}

	var trace churn.Trace
	if *churnGap > 0 {
		var err error
		trace, err = churn.Generate(churn.Config{
			Seed:             *seed + 1,
			Locations:        locs,
			Horizon:          interval.Time(*horizon),
			MeanInterarrival: *churnGap,
			LeaseMin:         8,
			LeaseMax:         80,
			RateMin:          1,
			RateMax:          4,
			LinkProb:         0.3,
			RenegeProb:       *renege,
			Base:             *baseRate,
		})
		if err != nil {
			return err
		}
	} else if *baseRate > 0 {
		for _, loc := range locs {
			trace.Base.Add(resource.NewTerm(
				resource.FromUnits(*baseRate), resource.CPUAt(loc),
				interval.New(0, interval.Time(*horizon))))
		}
	}
	// A static full mesh of unit links so send/migrate steps are
	// schedulable regardless of churn.
	for _, src := range locs {
		for _, dst := range locs {
			if src != dst {
				trace.Base.Add(resource.NewTerm(
					resource.FromUnits(1), resource.Link(src, dst),
					interval.New(0, interval.Time(*horizon))))
			}
		}
	}

	var eventLog *tracepkg.Log
	if *traceFile != "" {
		eventLog = tracepkg.NewLog()
	}
	res, err := sim.Run(sim.Config{Policy: policy, Executor: exec, Trace: eventLog, Repair: *repair}, jobList, trace)
	if err != nil {
		return err
	}
	if eventLog != nil {
		var dst io.Writer = os.Stdout
		if *traceFile != "-" {
			f, err := os.Create(*traceFile)
			if err != nil {
				return err
			}
			defer f.Close()
			dst = f
		}
		if err := eventLog.WriteJSONL(dst); err != nil {
			return err
		}
	}

	t := metrics.NewTable(
		fmt.Sprintf("rotasim: %s / %s (seed %d)", res.Policy, res.Executor, *seed),
		"metric", "value")
	t.AddRow("offered", res.Offered)
	t.AddRow("admitted", res.Admitted)
	t.AddRow("rejected", res.Rejected)
	t.AddRow("completed on time", res.CompletedOnTime)
	t.AddRow("missed", res.Missed)
	t.AddRow("violations", res.Violations)
	if *repair {
		t.AddRow("repaired", res.Repaired)
	}
	t.AddRow("admit rate", res.AdmitRate())
	t.AddRow("miss rate", res.MissRate())
	t.AddRow("goodput ratio", res.GoodputRatio())
	t.AddRow("utilization", res.Utilization())
	t.AddRow("decisions", res.Decisions)
	if res.Decisions > 0 {
		t.AddRow("mean decision µs", float64(res.DecisionTime.Microseconds())/float64(res.Decisions))
	}
	if *csv {
		t.RenderCSV(out)
	} else {
		t.Render(out)
	}
	return nil
}
