package main

import (
	"os"
	"strings"
	"testing"
)

func TestRunDefaultRota(t *testing.T) {
	var sb strings.Builder
	err := run([]string{"-jobs", "20", "-horizon", "150"}, &sb)
	if err != nil {
		t.Fatal(err)
	}
	out := sb.String()
	for _, want := range []string{"rota / planned", "offered", "admitted", "miss rate"} {
		if !strings.Contains(out, want) {
			t.Errorf("output missing %q:\n%s", want, out)
		}
	}
	// The rota/planned run must report zero misses and violations.
	for _, line := range strings.Split(out, "\n") {
		if strings.HasPrefix(line, "missed") || strings.HasPrefix(line, "violations") {
			if !strings.Contains(line, "| 0") {
				t.Errorf("assurance broken: %s", line)
			}
		}
	}
}

func TestRunPolicies(t *testing.T) {
	for _, policy := range []string{"naive-total", "edf-feasible", "always-admit", "rota-exhaustive"} {
		var sb strings.Builder
		if err := run([]string{"-policy", policy, "-jobs", "10", "-horizon", "100"}, &sb); err != nil {
			t.Fatalf("%s: %v", policy, err)
		}
		if !strings.Contains(sb.String(), policy) {
			t.Errorf("%s missing from output", policy)
		}
	}
}

func TestRunExecutorOverride(t *testing.T) {
	var sb strings.Builder
	// Explicitly requesting planned for a planless policy must fail at
	// the first admission.
	err := run([]string{"-policy", "always-admit", "-executor", "planned", "-jobs", "5", "-horizon", "80"}, &sb)
	if err == nil {
		t.Error("planned executor with planless policy should fail")
	}
}

func TestRunCSV(t *testing.T) {
	var sb strings.Builder
	if err := run([]string{"-jobs", "5", "-horizon", "80", "-csv"}, &sb); err != nil {
		t.Fatal(err)
	}
	if !strings.HasPrefix(sb.String(), "metric,value") {
		t.Errorf("CSV header missing: %q", strings.SplitN(sb.String(), "\n", 2)[0])
	}
}

func TestRunNoChurnStaticBase(t *testing.T) {
	var sb strings.Builder
	if err := run([]string{"-churn", "0", "-jobs", "10", "-horizon", "100"}, &sb); err != nil {
		t.Fatal(err)
	}
}

func TestRunValidationErrors(t *testing.T) {
	var sb strings.Builder
	if err := run([]string{"-policy", "bogus"}, &sb); err == nil {
		t.Error("unknown policy accepted")
	}
	if err := run([]string{"-executor", "bogus"}, &sb); err == nil {
		t.Error("unknown executor accepted")
	}
	if err := run([]string{"-badflag"}, &sb); err == nil {
		t.Error("bad flag accepted")
	}
}

func TestRunRepairAndTraceFlags(t *testing.T) {
	dir := t.TempDir()
	tracePath := dir + "/run.jsonl"
	var sb strings.Builder
	err := run([]string{
		"-jobs", "20", "-horizon", "200", "-renege", "0.3",
		"-repair", "-trace", tracePath,
	}, &sb)
	if err != nil {
		t.Fatal(err)
	}
	if !strings.Contains(sb.String(), "repaired") {
		t.Errorf("repaired row missing:\n%s", sb.String())
	}
	data, err := os.ReadFile(tracePath)
	if err != nil {
		t.Fatal(err)
	}
	if len(data) == 0 {
		t.Error("trace file empty")
	}
	// Unwritable trace path errors.
	if err := run([]string{"-jobs", "2", "-horizon", "50", "-trace", dir + "/nodir/x.jsonl"}, &strings.Builder{}); err == nil {
		t.Error("unwritable trace path accepted")
	}
	// Unwritable workload dump errors.
	if err := run([]string{"-jobs", "2", "-horizon", "50", "-dump-workload", dir + "/nodir/w.json"}, &strings.Builder{}); err == nil {
		t.Error("unwritable workload path accepted")
	}
}
