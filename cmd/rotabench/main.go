// Command rotabench runs the evaluation suite E1–E10 (see DESIGN.md and
// EXPERIMENTS.md) and prints each experiment's table.
//
// Usage:
//
//	rotabench                 # run everything
//	rotabench -exp e4         # one experiment
//	rotabench -exp e4 -csv    # machine-readable output
//	rotabench -list           # list experiment ids
package main

import (
	"flag"
	"fmt"
	"io"
	"os"
	"strings"

	"repro/internal/experiments"
)

func main() {
	if err := run(os.Args[1:], os.Stdout); err != nil {
		fmt.Fprintln(os.Stderr, "rotabench:", err)
		os.Exit(1)
	}
}

func run(args []string, out io.Writer) error {
	fs := flag.NewFlagSet("rotabench", flag.ContinueOnError)
	exp := fs.String("exp", "", "experiment id to run (e1..e10); empty runs all")
	csv := fs.Bool("csv", false, "emit CSV instead of aligned tables")
	list := fs.Bool("list", false, "list experiment ids and exit")
	if err := fs.Parse(args); err != nil {
		return err
	}
	if *list {
		fmt.Fprintln(out, strings.Join(experiments.IDs(), "\n"))
		return nil
	}
	ids := experiments.IDs()
	if *exp != "" {
		ids = []string{strings.ToLower(*exp)}
	}
	for i, id := range ids {
		table, err := experiments.ByID(id)
		if err != nil {
			return err
		}
		if *csv {
			table.RenderCSV(out)
		} else {
			if i > 0 {
				fmt.Fprintln(out)
			}
			table.Render(out)
		}
	}
	return nil
}
