package main

import (
	"strings"
	"testing"
)

func TestRunList(t *testing.T) {
	var sb strings.Builder
	if err := run([]string{"-list"}, &sb); err != nil {
		t.Fatal(err)
	}
	for _, id := range []string{"e1", "e9"} {
		if !strings.Contains(sb.String(), id) {
			t.Errorf("list missing %s: %q", id, sb.String())
		}
	}
}

func TestRunSingleExperiment(t *testing.T) {
	var sb strings.Builder
	if err := run([]string{"-exp", "E1"}, &sb); err != nil {
		t.Fatal(err)
	}
	if !strings.Contains(sb.String(), "Allen interval relations") {
		t.Errorf("unexpected output: %q", sb.String())
	}
}

func TestRunCSV(t *testing.T) {
	var sb strings.Builder
	if err := run([]string{"-exp", "e1", "-csv"}, &sb); err != nil {
		t.Fatal(err)
	}
	first := strings.SplitN(sb.String(), "\n", 2)[0]
	if first != "relation,symbol,witness A,witness B,converse" {
		t.Errorf("CSV header = %q", first)
	}
}

func TestRunUnknownExperiment(t *testing.T) {
	var sb strings.Builder
	if err := run([]string{"-exp", "e42"}, &sb); err == nil {
		t.Error("unknown experiment accepted")
	}
}

func TestRunBadFlag(t *testing.T) {
	var sb strings.Builder
	if err := run([]string{"-nonsense"}, &sb); err == nil {
		t.Error("bad flag accepted")
	}
}
