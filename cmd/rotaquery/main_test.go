package main

import (
	"context"
	"encoding/json"
	"net/http/httptest"
	"strings"
	"testing"

	"repro/internal/interval"
	"repro/internal/resource"
	"repro/internal/server"
)

func startDaemon(t *testing.T) *httptest.Server {
	t.Helper()
	var theta resource.Set
	theta.Add(resource.NewTerm(resource.FromUnits(8), resource.CPUAt("l1"), interval.New(0, 1000)))
	srv, err := server.New(server.Config{Theta: theta})
	if err != nil {
		t.Fatal(err)
	}
	ts := httptest.NewServer(srv)
	t.Cleanup(func() {
		ts.Close()
		_ = srv.Shutdown(context.Background())
	})
	return ts
}

func TestOneShot(t *testing.T) {
	ts := startDaemon(t)
	var out strings.Builder
	if err := run([]string{"-addr", ts.URL, "holds(l1, cpu>=5, always, next 30)"}, &out); err != nil {
		t.Fatal(err)
	}
	var resp server.QueryResponse
	if err := json.Unmarshal([]byte(out.String()), &resp); err != nil {
		t.Fatalf("unparsable verdict %q: %v", out.String(), err)
	}
	if !resp.Holds {
		t.Fatalf("8 free units should satisfy cpu>=5: %+v", resp)
	}
	if resp.Query != "holds(l1, cpu>=5, always, next 30)" {
		t.Fatalf("unexpected canonical query %q", resp.Query)
	}
}

func TestOneShotParseErrorIsLocal(t *testing.T) {
	// A syntax error must not need (or touch) the daemon.
	var out strings.Builder
	err := run([]string{"-addr", "http://127.0.0.1:1", "holds(l1)"}, &out)
	if err == nil {
		t.Fatal("bad query accepted")
	}
}

func TestWatchInitialVerdict(t *testing.T) {
	ts := startDaemon(t)
	var out strings.Builder
	if err := run([]string{"-addr", ts.URL, "-watch", "-count", "1", "holds(l1, cpu>=5, next 30)"}, &out); err != nil {
		t.Fatal(err)
	}
	line := strings.TrimSpace(out.String())
	var ev struct {
		Holds  bool   `json:"holds"`
		Reason string `json:"reason"`
		Seq    uint64 `json:"seq"`
	}
	if err := json.Unmarshal([]byte(line), &ev); err != nil {
		t.Fatalf("unparsable event %q: %v", line, err)
	}
	if !ev.Holds || ev.Reason != "subscribe" || ev.Seq != 1 {
		t.Fatalf("unexpected initial event: %s", line)
	}
}
