// Command rotaquery evaluates temporal queries against a running rotad
// daemon — one-shot, or as a standing subscription streaming verdict
// flips.
//
// Usage:
//
//	rotaquery -addr http://localhost:8080 'holds(l1, cpu>=5, always, next 30)'
//	rotaquery -addr http://localhost:8080 -watch 'feasible(job-1, before deadline)'
//
// One-shot queries print the daemon's verdict JSON. With -watch, the
// first line is the current verdict and every subsequent line is a
// verdict flip, until -count events arrived or the stream ends.
package main

import (
	"bufio"
	"context"
	"flag"
	"fmt"
	"io"
	"net/http"
	neturl "net/url"
	"os"
	"strings"
	"time"

	"repro/internal/query"
)

func main() {
	if err := run(os.Args[1:], os.Stdout); err != nil {
		fmt.Fprintln(os.Stderr, "rotaquery:", err)
		os.Exit(1)
	}
}

func run(args []string, out io.Writer) error {
	fs := flag.NewFlagSet("rotaquery", flag.ContinueOnError)
	addr := fs.String("addr", "http://localhost:8080", "base URL of the rotad daemon")
	watch := fs.Bool("watch", false, "subscribe and stream verdict flips instead of evaluating once")
	count := fs.Int("count", 0, "with -watch, exit after N events (0 streams until the server ends it)")
	queue := fs.Int("queue", 16, "with -watch, server-side event queue bound")
	timeout := fs.Duration("timeout", 10*time.Second, "one-shot request timeout (watch streams are unbounded)")
	if err := fs.Parse(args); err != nil {
		return err
	}
	q := strings.TrimSpace(strings.Join(fs.Args(), " "))
	if q == "" {
		return fmt.Errorf("usage: rotaquery [-watch] 'holds(l1, cpu>=5, always, next 30)'")
	}
	// Compile locally first: syntax errors surface immediately, with the
	// canonical form the server will evaluate.
	c, err := query.ParseText(q)
	if err != nil {
		return err
	}
	base := strings.TrimSuffix(*addr, "/")
	if !strings.Contains(base, "://") {
		base = "http://" + base
	}
	if *watch {
		return watchQuery(base, c.Source(), *queue, *count, out)
	}
	return oneShot(base, c.Source(), *timeout, out)
}

// oneShot evaluates once and prints the verdict JSON.
func oneShot(base, q string, timeout time.Duration, out io.Writer) error {
	ctx, cancel := context.WithTimeout(context.Background(), timeout)
	defer cancel()
	url := base + "/v1/query?q=" + neturl.QueryEscape(q)
	req, err := http.NewRequestWithContext(ctx, http.MethodGet, url, nil)
	if err != nil {
		return err
	}
	resp, err := http.DefaultClient.Do(req)
	if err != nil {
		return err
	}
	defer resp.Body.Close()
	data, err := io.ReadAll(io.LimitReader(resp.Body, 1<<20))
	if err != nil {
		return err
	}
	if resp.StatusCode != http.StatusOK {
		return fmt.Errorf("%s returned %d: %s", url, resp.StatusCode, strings.TrimSpace(string(data)))
	}
	_, err = fmt.Fprint(out, string(data))
	return err
}

// watchQuery subscribes over SSE and prints each verdict event as one
// JSON line.
func watchQuery(base, q string, queue, count int, out io.Writer) error {
	url := fmt.Sprintf("%s/v1/watch?q=%s&queue=%d", base, neturl.QueryEscape(q), queue)
	req, err := http.NewRequest(http.MethodGet, url, nil)
	if err != nil {
		return err
	}
	resp, err := http.DefaultClient.Do(req)
	if err != nil {
		return err
	}
	defer resp.Body.Close()
	if resp.StatusCode != http.StatusOK {
		data, _ := io.ReadAll(io.LimitReader(resp.Body, 1<<16))
		return fmt.Errorf("%s returned %d: %s", url, resp.StatusCode, strings.TrimSpace(string(data)))
	}
	seen := 0
	sc := bufio.NewScanner(resp.Body)
	sc.Buffer(make([]byte, 0, 64*1024), 1<<20)
	for sc.Scan() {
		line := sc.Text()
		if !strings.HasPrefix(line, "data: ") {
			continue // event: tags, keepalive comments, blank separators
		}
		if _, err := fmt.Fprintln(out, strings.TrimPrefix(line, "data: ")); err != nil {
			return err
		}
		seen++
		if count > 0 && seen >= count {
			return nil
		}
	}
	if err := sc.Err(); err != nil && seen == 0 {
		return err
	}
	return nil
}
