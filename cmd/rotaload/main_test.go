package main

import (
	"bytes"
	"context"
	"net/http/httptest"
	"strings"
	"testing"

	"repro/internal/interval"
	"repro/internal/resource"
	"repro/internal/server"
)

func testDaemon(t *testing.T) *httptest.Server {
	t.Helper()
	locs := []resource.Location{"l1", "l2", "l3", "l4"}
	var theta resource.Set
	window := interval.New(0, 100000)
	for _, loc := range locs {
		theta.Add(resource.NewTerm(resource.FromUnits(4), resource.CPUAt(loc), window))
	}
	for _, src := range locs {
		for _, dst := range locs {
			if src != dst {
				theta.Add(resource.NewTerm(resource.FromUnits(1), resource.Link(src, dst), window))
			}
		}
	}
	srv, err := server.New(server.Config{Theta: theta, Workers: 4})
	if err != nil {
		t.Fatal(err)
	}
	ts := httptest.NewServer(srv)
	t.Cleanup(func() {
		ts.Close()
		_ = srv.Shutdown(context.Background())
	})
	return ts
}

func TestRotaloadAgainstLiveDaemon(t *testing.T) {
	ts := testDaemon(t)
	var out bytes.Buffer
	err := run([]string{
		"-addr", ts.URL,
		"-n", "120",
		"-clients", "4",
		"-seed", "5",
	}, &out)
	if err != nil {
		t.Fatalf("rotaload: %v\n%s", err, out.String())
	}
	for _, want := range []string{"throughput req/s", "latency p99 µs", "server decisions"} {
		if !strings.Contains(out.String(), want) {
			t.Errorf("output missing %q:\n%s", want, out.String())
		}
	}
}

func TestRotaloadSchemelessAddr(t *testing.T) {
	ts := testDaemon(t)
	var out bytes.Buffer
	err := run([]string{
		"-addr", strings.TrimPrefix(ts.URL, "http://"),
		"-n", "20", "-clients", "4", "-csv",
	}, &out)
	if err != nil {
		t.Fatalf("rotaload schemeless: %v\n%s", err, out.String())
	}
	if !strings.Contains(out.String(), "requests,20") {
		t.Errorf("csv missing requests row:\n%s", out.String())
	}
}

func TestRotaloadUnreachableDaemon(t *testing.T) {
	var out bytes.Buffer
	if err := run([]string{"-addr", "http://127.0.0.1:1", "-n", "4", "-clients", "2"}, &out); err == nil {
		t.Fatal("expected errors against an unreachable daemon")
	}
}
