// Command rotaload hammers a running rotad daemon with a synthetic
// workload stream and reports throughput and decision-latency
// percentiles — the client half of the rotad selftest, usable against
// any live daemon.
//
// Usage:
//
//	rotad -addr :8080 &
//	rotaload -addr http://localhost:8080 -n 1000 -clients 8
package main

import (
	"context"
	"encoding/json"
	"flag"
	"fmt"
	"io"
	"net/http"
	"os"
	"strings"
	"time"

	"repro/internal/metrics"
	"repro/internal/obs"
	"repro/internal/obs/assure"
	"repro/internal/resource"
	"repro/internal/server"
	"repro/internal/workload"
)

func main() {
	if err := run(os.Args[1:], os.Stdout); err != nil {
		fmt.Fprintln(os.Stderr, "rotaload:", err)
		os.Exit(1)
	}
}

func run(args []string, out io.Writer) error {
	fs := flag.NewFlagSet("rotaload", flag.ContinueOnError)
	addr := fs.String("addr", "http://localhost:8080", "base URL of the rotad daemon; comma-separated list spreads load across a cluster's nodes")
	n := fs.Int("n", 1000, "total admit requests")
	clients := fs.Int("clients", 4, "concurrent clients")
	seed := fs.Int64("seed", 1, "workload seed")
	locations := fs.Int("locations", 4, "locations to spread jobs across (l1..lN, must match the daemon's)")
	slack := fs.Float64("slack", 3, "deadline slack factor")
	release := fs.Bool("release", true, "release each admitted job immediately")
	timeout := fs.Duration("timeout", 10*time.Second, "per-request HTTP timeout")
	csv := fs.Bool("csv", false, "emit CSV")
	slowlog := fs.Int("slowlog", 0, "report the N slowest requests with their trace IDs (feed to rotatrace -spans)")
	queryFrac := fs.Float64("query-frac", 0, "fraction of requests issued as one-shot temporal queries instead of admits (0..1)")
	if err := fs.Parse(args); err != nil {
		return err
	}
	if *queryFrac < 0 || *queryFrac > 1 {
		return fmt.Errorf("-query-frac %v outside [0,1]", *queryFrac)
	}
	var baseURLs []string
	for _, a := range strings.Split(*addr, ",") {
		a = strings.TrimSuffix(strings.TrimSpace(a), "/")
		if a == "" {
			continue
		}
		if !strings.Contains(a, "://") {
			a = "http://" + a
		}
		baseURLs = append(baseURLs, a)
	}
	if len(baseURLs) == 0 {
		return fmt.Errorf("-addr names no targets")
	}
	baseURL := baseURLs[0]

	locs := make([]resource.Location, *locations)
	for i := range locs {
		locs[i] = resource.Location(fmt.Sprintf("l%d", i+1))
	}
	jobs, err := workload.Generate(workload.Config{
		Seed:             *seed,
		Locations:        locs,
		NumJobs:          min(*n, 4096),
		MeanInterarrival: 8,
		ActorsMin:        1,
		ActorsMax:        3,
		StepsMin:         1,
		StepsMax:         4,
		SendProb:         0.2,
		MigrateProb:      0.05,
		EvalWeightMax:    3,
		SlackFactor:      *slack,
	})
	if err != nil {
		return err
	}

	report, err := server.RunLoad(context.Background(), server.LoadConfig{
		BaseURLs:        baseURLs,
		Jobs:            jobs,
		Requests:        *n,
		Clients:         *clients,
		ReleaseAdmitted: *release,
		Timeout:         *timeout,
		SlowLog:         *slowlog,
		QueryFrac:       *queryFrac,
	})
	if err != nil {
		return err
	}

	t := metrics.NewTable(
		fmt.Sprintf("rotaload: %d requests, %d clients -> %s", *n, *clients, strings.Join(baseURLs, ",")),
		"metric", "value")
	t.AddRow("requests", report.Requests)
	t.AddRow("admitted", report.Admitted)
	t.AddRow("rejected", report.Rejected)
	t.AddRow("released", report.Released)
	t.AddRow("errors", report.Errors)
	t.AddRow("loadgen_redirects", report.Redirects)
	t.AddRow("duration ms", float64(report.Duration.Microseconds())/1000)
	t.AddRow("throughput req/s", report.Throughput)
	t.AddRow("latency mean µs", report.MeanUS)
	t.AddRow("latency p50 µs", report.P50US)
	t.AddRow("latency p90 µs", report.P90US)
	t.AddRow("latency p99 µs", report.P99US)
	t.AddRow("latency max µs", report.MaxUS)
	if report.Queries > 0 {
		t.AddRow("queries", report.Queries)
		t.AddRow("queries holding", report.QueryHolds)
		t.AddRow("query latency mean µs", report.QueryMeanUS)
		t.AddRow("query latency p50 µs", report.QueryP50US)
		t.AddRow("query latency p99 µs", report.QueryP99US)
	}

	// Server-side decision stats, when the daemon is reachable for them.
	if stats, err := server.FetchStats(context.Background(), baseURL); err == nil {
		t.AddRow("server decisions", stats.Decisions)
		t.AddRow("server decision p50 µs", stats.DecisionLatencyUS.P50)
		t.AddRow("server decision p99 µs", stats.DecisionLatencyUS.P99)
	}
	// The daemon's own account of the run: did every admitted deadline
	// hold? /v1/assure answers for one node or, via fan-out, a cluster.
	if as, err := fetchAssure(context.Background(), baseURL, *timeout); err == nil {
		t.AddRow("promise_violations", as.Violated)
		t.AddRow("promises kept", as.Kept)
		t.AddRow("promises active", as.Active)
		t.AddRow("slo attainment", as.Attainment)
		t.AddRow("violation burn rate/min", as.BurnRate)
	}
	// And the Prometheus exposition, when the daemon serves one: the
	// counters a dashboard would scrape, read back over the same wire.
	if m, err := scrapeMetrics(context.Background(), baseURL, *timeout); err == nil {
		for _, row := range []struct{ label, family string }{
			{"scrape admitted_total", "rota_admitted_total"},
			{"scrape rejected_total", "rota_rejected_total"},
			{"scrape late_decisions_total", "rota_late_decisions_total"},
			{"scrape queue_depth", "rota_queue_depth"},
			{"scrape ledger commitments", "rota_ledger_commitments"},
			{"scrape queries_total", "rota_queries_total"},
			{"scrape ledger epoch", "rota_ledger_epoch"},
		} {
			if v, ok := obs.MetricValue(m, row.family, ""); ok {
				t.AddRow(row.label, v)
			}
		}
	}
	if report.UnexplainedRejects > 0 {
		t.AddRow("rejects without provenance", report.UnexplainedRejects)
	}
	if *csv {
		t.RenderCSV(out)
	} else {
		t.Render(out)
	}

	if len(report.Slow) > 0 {
		fmt.Fprintln(out)
		st := metrics.NewTable(
			fmt.Sprintf("slow log: %d slowest requests (rotatrace -spans -trace <trace> %s/debug/rota/trace)", len(report.Slow), baseURL),
			"trace", "job", "admit", "latency µs", "slack@admit")
		for _, s := range report.Slow {
			st.AddRow(s.Trace, s.Job, s.Admit, s.LatencyUS, s.SlackAtAdmit)
		}
		if *csv {
			st.RenderCSV(out)
		} else {
			st.Render(out)
		}
	}

	if report.Errors > 0 {
		return fmt.Errorf("%d of %d requests errored", report.Errors, report.Requests)
	}
	return nil
}

// fetchAssure reads the promise-ledger stats from GET /v1/assure. The
// shape differs between a single node (a Report with a stats block) and
// a cluster member (a fan-out response with summed totals); decode both
// and pick whichever the daemon sent.
func fetchAssure(ctx context.Context, baseURL string, timeout time.Duration) (assure.Stats, error) {
	ctx, cancel := context.WithTimeout(ctx, timeout)
	defer cancel()
	req, err := http.NewRequestWithContext(ctx, http.MethodGet, baseURL+"/v1/assure", nil)
	if err != nil {
		return assure.Stats{}, err
	}
	resp, err := http.DefaultClient.Do(req)
	if err != nil {
		return assure.Stats{}, err
	}
	defer resp.Body.Close()
	if resp.StatusCode != http.StatusOK {
		return assure.Stats{}, fmt.Errorf("rotaload: %s/v1/assure returned %d", baseURL, resp.StatusCode)
	}
	var ar struct {
		Cluster bool         `json:"cluster"`
		Stats   assure.Stats `json:"stats"`
		Totals  assure.Stats `json:"totals"`
	}
	if err := json.NewDecoder(io.LimitReader(resp.Body, 4<<20)).Decode(&ar); err != nil {
		return assure.Stats{}, err
	}
	if ar.Cluster {
		return ar.Totals, nil
	}
	return ar.Stats, nil
}

// scrapeMetrics fetches and parses the daemon's Prometheus exposition.
func scrapeMetrics(ctx context.Context, baseURL string, timeout time.Duration) (map[string]float64, error) {
	ctx, cancel := context.WithTimeout(ctx, timeout)
	defer cancel()
	req, err := http.NewRequestWithContext(ctx, http.MethodGet, baseURL+"/metrics", nil)
	if err != nil {
		return nil, err
	}
	resp, err := http.DefaultClient.Do(req)
	if err != nil {
		return nil, err
	}
	defer resp.Body.Close()
	if resp.StatusCode != http.StatusOK {
		return nil, fmt.Errorf("rotaload: %s/metrics returned %d", baseURL, resp.StatusCode)
	}
	return obs.ParseMetrics(io.LimitReader(resp.Body, 4<<20))
}
