// Command benchjson converts `go test -bench` output on stdin into a
// JSON array on stdout — one record per benchmark with its package,
// iteration count, ns/op, derived ops/sec, and (under -benchmem)
// B/op and allocs/op. The Makefile's bench target pipes through it to
// regenerate BENCH_PR6.json at the repo root.
package main

import (
	"bufio"
	"encoding/json"
	"fmt"
	"io"
	"os"
	"strconv"
	"strings"
)

// Record is one benchmark result.
type Record struct {
	Pkg         string  `json:"pkg"`
	Name        string  `json:"name"`
	Iters       int64   `json:"iters"`
	NsPerOp     float64 `json:"ns_per_op"`
	OpsPerSec   float64 `json:"ops_per_sec"`
	BytesPerOp  float64 `json:"bytes_per_op,omitempty"`
	AllocsPerOp float64 `json:"allocs_per_op,omitempty"`
}

func main() {
	recs, err := parse(os.Stdin)
	if err != nil {
		fmt.Fprintln(os.Stderr, "benchjson:", err)
		os.Exit(1)
	}
	enc := json.NewEncoder(os.Stdout)
	enc.SetIndent("", "  ")
	if err := enc.Encode(recs); err != nil {
		fmt.Fprintln(os.Stderr, "benchjson:", err)
		os.Exit(1)
	}
}

// parse scans benchmark lines, tracking the current "pkg:" header so
// each record knows which package it came from.
func parse(r io.Reader) ([]Record, error) {
	recs := []Record{}
	pkg := ""
	sc := bufio.NewScanner(r)
	sc.Buffer(make([]byte, 0, 64*1024), 1<<20)
	for sc.Scan() {
		line := strings.TrimSpace(sc.Text())
		if rest, ok := strings.CutPrefix(line, "pkg: "); ok {
			pkg = strings.TrimSpace(rest)
			continue
		}
		if !strings.HasPrefix(line, "Benchmark") {
			continue
		}
		fields := strings.Fields(line)
		if len(fields) < 4 {
			continue
		}
		iters, err := strconv.ParseInt(fields[1], 10, 64)
		if err != nil {
			continue // a benchmark name alone on its line, not a result
		}
		rec := Record{Pkg: pkg, Name: fields[0], Iters: iters}
		for i := 2; i+1 < len(fields); i += 2 {
			v, err := strconv.ParseFloat(fields[i], 64)
			if err != nil {
				return nil, fmt.Errorf("line %q: bad value %q", line, fields[i])
			}
			switch fields[i+1] {
			case "ns/op":
				rec.NsPerOp = v
				if v > 0 {
					rec.OpsPerSec = 1e9 / v
				}
			case "B/op":
				rec.BytesPerOp = v
			case "allocs/op":
				rec.AllocsPerOp = v
			}
		}
		if rec.NsPerOp == 0 {
			continue
		}
		recs = append(recs, rec)
	}
	return recs, sc.Err()
}
