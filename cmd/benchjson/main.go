// Command benchjson converts `go test -bench` output on stdin into a
// JSON array on stdout — one record per benchmark with its package,
// iteration count, ns/op, derived ops/sec, and (under -benchmem)
// B/op and allocs/op. The Makefile's bench target pipes through it to
// regenerate the BENCH_PR*.json perf ledger at the repo root.
//
// With -compare OLD.json NEW.json it instead gates the two committed
// ledgers against each other: any benchmark present in both whose
// ns/op grew beyond -tolerance (default 15%) fails the run. `make ci`
// uses this to catch perf regressions between PRs.
package main

import (
	"bufio"
	"encoding/json"
	"flag"
	"fmt"
	"io"
	"os"
	"strconv"
	"strings"
)

// Record is one benchmark result.
type Record struct {
	Pkg         string  `json:"pkg"`
	Name        string  `json:"name"`
	Iters       int64   `json:"iters"`
	NsPerOp     float64 `json:"ns_per_op"`
	OpsPerSec   float64 `json:"ops_per_sec"`
	BytesPerOp  float64 `json:"bytes_per_op,omitempty"`
	AllocsPerOp float64 `json:"allocs_per_op,omitempty"`
	// Extra holds custom b.ReportMetric units (e.g. the saturation
	// benchmark's p50-us / p99-us latency rows), keyed by unit. Only
	// ns/op gates -compare; extras are informational.
	Extra map[string]float64 `json:"extra,omitempty"`
}

func main() {
	compareMode := flag.Bool("compare", false, "compare two BENCH_*.json ledgers instead of parsing stdin")
	tolerance := flag.String("tolerance", "15%", "allowed ns/op growth before -compare fails (e.g. 15% or 0.15)")
	flag.Parse()
	if *compareMode {
		// flag.Parse stops at the first positional, so accept
		// "-tolerance 15%" trailing the two ledger paths as well.
		files, tol := []string{}, *tolerance
		args := flag.Args()
		for i := 0; i < len(args); i++ {
			switch {
			case args[i] == "-tolerance" && i+1 < len(args):
				tol = args[i+1]
				i++
			case strings.HasPrefix(args[i], "-tolerance="):
				tol = strings.TrimPrefix(args[i], "-tolerance=")
			default:
				files = append(files, args[i])
			}
		}
		if len(files) != 2 {
			fmt.Fprintln(os.Stderr, "benchjson: -compare needs exactly two ledger files, got", len(files))
			os.Exit(2)
		}
		os.Exit(runCompare(os.Stderr, files[0], files[1], tol))
	}
	recs, err := parse(os.Stdin)
	if err != nil {
		fmt.Fprintln(os.Stderr, "benchjson:", err)
		os.Exit(1)
	}
	enc := json.NewEncoder(os.Stdout)
	enc.SetIndent("", "  ")
	if err := enc.Encode(recs); err != nil {
		fmt.Fprintln(os.Stderr, "benchjson:", err)
		os.Exit(1)
	}
}

// parse scans benchmark lines, tracking the current "pkg:" header so
// each record knows which package it came from. Repeated runs of the
// same benchmark (go test -count=N) collapse to the run with the lowest
// ns/op: the minimum is the standard noise-robust statistic — scheduler
// and GC interference only ever slow a run down — and it keeps the
// committed ledgers stable enough for the -compare tolerance gate.
func parse(r io.Reader) ([]Record, error) {
	recs := []Record{}
	index := map[string]int{} // pkg+name -> position in recs
	pkg := ""
	sc := bufio.NewScanner(r)
	sc.Buffer(make([]byte, 0, 64*1024), 1<<20)
	for sc.Scan() {
		line := strings.TrimSpace(sc.Text())
		if rest, ok := strings.CutPrefix(line, "pkg: "); ok {
			pkg = strings.TrimSpace(rest)
			continue
		}
		if !strings.HasPrefix(line, "Benchmark") {
			continue
		}
		fields := strings.Fields(line)
		if len(fields) < 4 {
			continue
		}
		iters, err := strconv.ParseInt(fields[1], 10, 64)
		if err != nil {
			continue // a benchmark name alone on its line, not a result
		}
		rec := Record{Pkg: pkg, Name: fields[0], Iters: iters}
		for i := 2; i+1 < len(fields); i += 2 {
			v, err := strconv.ParseFloat(fields[i], 64)
			if err != nil {
				return nil, fmt.Errorf("line %q: bad value %q", line, fields[i])
			}
			switch fields[i+1] {
			case "ns/op":
				rec.NsPerOp = v
				if v > 0 {
					rec.OpsPerSec = 1e9 / v
				}
			case "B/op":
				rec.BytesPerOp = v
			case "allocs/op":
				rec.AllocsPerOp = v
			default:
				// MB/s and custom b.ReportMetric units.
				if rec.Extra == nil {
					rec.Extra = map[string]float64{}
				}
				rec.Extra[fields[i+1]] = v
			}
		}
		if rec.NsPerOp == 0 {
			continue
		}
		key := rec.Pkg + " " + rec.Name
		if at, seen := index[key]; seen {
			if rec.NsPerOp < recs[at].NsPerOp {
				recs[at] = rec
			}
			continue
		}
		index[key] = len(recs)
		recs = append(recs, rec)
	}
	return recs, sc.Err()
}
