// The -compare mode: read two BENCH_*.json ledgers (as emitted by the
// default stdin mode) and fail when any benchmark present in both has
// regressed beyond the tolerance. This closes the perf-ledger loop: the
// committed baseline from the previous PR gates the next one in CI.
package main

import (
	"encoding/json"
	"fmt"
	"io"
	"os"
	"sort"
	"strconv"
	"strings"
)

// delta is one benchmark's old-vs-new comparison.
type delta struct {
	Key     string // pkg + name
	OldNs   float64
	NewNs   float64
	Ratio   float64 // NewNs / OldNs
	Regress bool
}

// parseTolerance accepts "15%" or a bare ratio like "0.15".
func parseTolerance(s string) (float64, error) {
	s = strings.TrimSpace(s)
	pct := strings.HasSuffix(s, "%")
	v, err := strconv.ParseFloat(strings.TrimSuffix(s, "%"), 64)
	if err != nil {
		return 0, fmt.Errorf("bad tolerance %q: %w", s, err)
	}
	if pct {
		v /= 100
	}
	if v < 0 {
		return 0, fmt.Errorf("tolerance %q is negative", s)
	}
	return v, nil
}

func loadLedger(path string) (map[string]Record, error) {
	f, err := os.Open(path)
	if err != nil {
		return nil, err
	}
	defer f.Close()
	var recs []Record
	if err := json.NewDecoder(f).Decode(&recs); err != nil {
		return nil, fmt.Errorf("%s: %w", path, err)
	}
	out := make(map[string]Record, len(recs))
	for _, r := range recs {
		out[r.Pkg+" "+r.Name] = r
	}
	return out, nil
}

// compare pairs the two ledgers by pkg+name and flags regressions.
// Benchmarks present in only one ledger are reported but never fail the
// gate: new benchmarks appear every PR and old ones get renamed.
func compare(old, new map[string]Record, tolerance float64) (deltas []delta, onlyOld, onlyNew []string) {
	for key, o := range old {
		n, ok := new[key]
		if !ok {
			onlyOld = append(onlyOld, key)
			continue
		}
		d := delta{Key: key, OldNs: o.NsPerOp, NewNs: n.NsPerOp}
		if o.NsPerOp > 0 {
			d.Ratio = n.NsPerOp / o.NsPerOp
			d.Regress = d.Ratio > 1+tolerance
		}
		deltas = append(deltas, d)
	}
	for key := range new {
		if _, ok := old[key]; !ok {
			onlyNew = append(onlyNew, key)
		}
	}
	sort.Slice(deltas, func(i, j int) bool { return deltas[i].Ratio > deltas[j].Ratio })
	sort.Strings(onlyOld)
	sort.Strings(onlyNew)
	return deltas, onlyOld, onlyNew
}

// runCompare is the -compare entry point; returns the process exit code.
func runCompare(w io.Writer, oldPath, newPath, tolStr string) int {
	tol, err := parseTolerance(tolStr)
	if err != nil {
		fmt.Fprintln(w, "benchjson:", err)
		return 2
	}
	old, err := loadLedger(oldPath)
	if err != nil {
		fmt.Fprintln(w, "benchjson:", err)
		return 2
	}
	new, err := loadLedger(newPath)
	if err != nil {
		fmt.Fprintln(w, "benchjson:", err)
		return 2
	}
	deltas, onlyOld, onlyNew := compare(old, new, tol)
	regressions := 0
	for _, d := range deltas {
		if d.Regress {
			regressions++
			fmt.Fprintf(w, "REGRESSION %s: %.0f ns/op -> %.0f ns/op (%.1f%%, tolerance %.1f%%)\n",
				d.Key, d.OldNs, d.NewNs, (d.Ratio-1)*100, tol*100)
		}
	}
	for _, key := range onlyOld {
		fmt.Fprintf(w, "note: %s only in %s\n", key, oldPath)
	}
	for _, key := range onlyNew {
		fmt.Fprintf(w, "note: %s only in %s\n", key, newPath)
	}
	fmt.Fprintf(w, "compared %d benchmarks (%s vs %s): %d regressions beyond %.1f%%\n",
		len(deltas), oldPath, newPath, regressions, tol*100)
	if regressions > 0 {
		return 1
	}
	return 0
}
