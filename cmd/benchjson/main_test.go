package main

import (
	"encoding/json"
	"os"
	"path/filepath"
	"strings"
	"testing"
)

const sample = `goos: linux
goarch: amd64
pkg: repro/internal/server
cpu: Intel(R) Xeon(R) Processor @ 2.10GHz
BenchmarkQueryParse        	   16950	      3381 ns/op	    2760 B/op	      36 allocs/op
BenchmarkQueryLoadedLedger/holds/commitments=10         	    3332	     18486 ns/op	   26771 B/op	      97 allocs/op
PASS
ok  	repro/internal/server	2.640s
pkg: repro/internal/resource
BenchmarkSetUnion-8   	  500000	      2100.5 ns/op
ok  	repro/internal/resource	1.100s
`

func TestParse(t *testing.T) {
	recs, err := parse(strings.NewReader(sample))
	if err != nil {
		t.Fatal(err)
	}
	if len(recs) != 3 {
		t.Fatalf("parsed %d records, want 3: %+v", len(recs), recs)
	}
	r := recs[0]
	if r.Pkg != "repro/internal/server" || r.Name != "BenchmarkQueryParse" ||
		r.Iters != 16950 || r.NsPerOp != 3381 || r.BytesPerOp != 2760 || r.AllocsPerOp != 36 {
		t.Errorf("record 0 = %+v", r)
	}
	if r.OpsPerSec < 295000 || r.OpsPerSec > 296000 {
		t.Errorf("ops/sec = %v, want ~295770", r.OpsPerSec)
	}
	sub := recs[1]
	if sub.Name != "BenchmarkQueryLoadedLedger/holds/commitments=10" {
		t.Errorf("sub-benchmark name = %q", sub.Name)
	}
	last := recs[2]
	if last.Pkg != "repro/internal/resource" || last.Name != "BenchmarkSetUnion-8" || last.NsPerOp != 2100.5 {
		t.Errorf("record 2 = %+v", last)
	}
	if last.BytesPerOp != 0 || last.AllocsPerOp != 0 {
		t.Errorf("record without -benchmem should leave mem fields zero: %+v", last)
	}
}

func TestParseCapturesCustomMetrics(t *testing.T) {
	in := "pkg: repro/internal/server\n" +
		"BenchmarkRotaloadSaturation/clients=64-8   3   402000000 ns/op   1250 p50-us   9800 p99-us   412 admitted\n"
	recs, err := parse(strings.NewReader(in))
	if err != nil {
		t.Fatal(err)
	}
	if len(recs) != 1 {
		t.Fatalf("parsed %d records, want 1: %+v", len(recs), recs)
	}
	r := recs[0]
	if r.NsPerOp != 402000000 {
		t.Errorf("ns/op = %v", r.NsPerOp)
	}
	if r.Extra["p50-us"] != 1250 || r.Extra["p99-us"] != 9800 || r.Extra["admitted"] != 412 {
		t.Errorf("custom ReportMetric units not captured: %+v", r.Extra)
	}
}

func TestParseKeepsFastestOfRepeatedRuns(t *testing.T) {
	in := "pkg: repro/internal/server\n" +
		"BenchmarkQueryParse-8   10000   3500 ns/op\n" +
		"BenchmarkQueryParse-8   12000   3100 ns/op\n" +
		"BenchmarkQueryParse-8    9000   3900 ns/op\n"
	recs, err := parse(strings.NewReader(in))
	if err != nil {
		t.Fatal(err)
	}
	if len(recs) != 1 {
		t.Fatalf("-count=3 runs should collapse to one record: %+v", recs)
	}
	if recs[0].NsPerOp != 3100 || recs[0].Iters != 12000 {
		t.Errorf("kept %+v, want the 3100 ns/op run", recs[0])
	}
}

func TestParseIgnoresNoise(t *testing.T) {
	recs, err := parse(strings.NewReader("FAIL\nBenchmarkBroken\nsomething else\n"))
	if err != nil {
		t.Fatal(err)
	}
	if len(recs) != 0 {
		t.Fatalf("noise produced records: %+v", recs)
	}
}

func ledgerFile(t *testing.T, recs []Record) string {
	t.Helper()
	b, err := json.Marshal(recs)
	if err != nil {
		t.Fatal(err)
	}
	path := filepath.Join(t.TempDir(), "bench.json")
	if err := os.WriteFile(path, b, 0o644); err != nil {
		t.Fatal(err)
	}
	return path
}

func TestCompareGate(t *testing.T) {
	old := ledgerFile(t, []Record{
		{Pkg: "repro/internal/server", Name: "BenchmarkA", NsPerOp: 1000},
		{Pkg: "repro/internal/server", Name: "BenchmarkB", NsPerOp: 1000},
		{Pkg: "repro/internal/server", Name: "BenchmarkGone", NsPerOp: 50},
	})
	new := ledgerFile(t, []Record{
		{Pkg: "repro/internal/server", Name: "BenchmarkA", NsPerOp: 1100}, // +10%: within 15%
		{Pkg: "repro/internal/server", Name: "BenchmarkB", NsPerOp: 1200}, // +20%: regression
		{Pkg: "repro/internal/server", Name: "BenchmarkNew", NsPerOp: 50},
	})

	var buf strings.Builder
	if code := runCompare(&buf, old, new, "15%"); code != 1 {
		t.Fatalf("20%% regression with 15%% tolerance: exit %d, want 1\n%s", code, buf.String())
	}
	out := buf.String()
	if !strings.Contains(out, "REGRESSION repro/internal/server BenchmarkB") {
		t.Errorf("missing regression line for BenchmarkB:\n%s", out)
	}
	if strings.Contains(out, "REGRESSION repro/internal/server BenchmarkA") {
		t.Errorf("BenchmarkA (+10%%) flagged under 15%% tolerance:\n%s", out)
	}
	// Appearing or disappearing benchmarks are notes, not failures.
	if !strings.Contains(out, "BenchmarkGone only in") || !strings.Contains(out, "BenchmarkNew only in") {
		t.Errorf("missing one-sided notes:\n%s", out)
	}

	buf.Reset()
	if code := runCompare(&buf, old, new, "25%"); code != 0 {
		t.Fatalf("20%% regression with 25%% tolerance: exit %d, want 0\n%s", code, buf.String())
	}
	// A bare-ratio tolerance parses too.
	buf.Reset()
	if code := runCompare(&buf, old, new, "0.25"); code != 0 {
		t.Fatalf("bare-ratio tolerance: exit %d, want 0\n%s", code, buf.String())
	}
	// Identical ledgers always pass.
	buf.Reset()
	if code := runCompare(&buf, old, old, "0%"); code != 0 {
		t.Fatalf("self-compare: exit %d, want 0\n%s", code, buf.String())
	}
	// Garbage tolerance and missing files are usage errors, not gates.
	buf.Reset()
	if code := runCompare(&buf, old, new, "lots"); code != 2 {
		t.Fatalf("bad tolerance: exit %d, want 2", code)
	}
	buf.Reset()
	if code := runCompare(&buf, old, filepath.Join(t.TempDir(), "missing.json"), "15%"); code != 2 {
		t.Fatalf("missing ledger: exit %d, want 2", code)
	}
}

// A PR that only adds benchmarks must sail through the gate: the new
// rows are informational (there is no baseline to regress against).
func TestCompareNewOnlyBenchmarksPass(t *testing.T) {
	old := ledgerFile(t, []Record{
		{Pkg: "repro/internal/server", Name: "BenchmarkA", NsPerOp: 1000},
	})
	new := ledgerFile(t, []Record{
		{Pkg: "repro/internal/server", Name: "BenchmarkA", NsPerOp: 1000},
		{Pkg: "repro/internal/server", Name: "BenchmarkAdmitHot/conc=64", NsPerOp: 900},
		{Pkg: "repro/internal/server", Name: "BenchmarkRotaloadSaturation", NsPerOp: 4e8,
			Extra: map[string]float64{"p99-us": 9800}},
	})
	var buf strings.Builder
	if code := runCompare(&buf, old, new, "15%"); code != 0 {
		t.Fatalf("NEW-only benchmarks failed the gate: exit %d, want 0\n%s", code, buf.String())
	}
	out := buf.String()
	if !strings.Contains(out, "BenchmarkAdmitHot/conc=64 only in") {
		t.Errorf("NEW-only benchmark not noted:\n%s", out)
	}
	if strings.Contains(out, "REGRESSION") {
		t.Errorf("unexpected regression line:\n%s", out)
	}
}
