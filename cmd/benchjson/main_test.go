package main

import (
	"strings"
	"testing"
)

const sample = `goos: linux
goarch: amd64
pkg: repro/internal/server
cpu: Intel(R) Xeon(R) Processor @ 2.10GHz
BenchmarkQueryParse        	   16950	      3381 ns/op	    2760 B/op	      36 allocs/op
BenchmarkQueryLoadedLedger/holds/commitments=10         	    3332	     18486 ns/op	   26771 B/op	      97 allocs/op
PASS
ok  	repro/internal/server	2.640s
pkg: repro/internal/resource
BenchmarkSetUnion-8   	  500000	      2100.5 ns/op
ok  	repro/internal/resource	1.100s
`

func TestParse(t *testing.T) {
	recs, err := parse(strings.NewReader(sample))
	if err != nil {
		t.Fatal(err)
	}
	if len(recs) != 3 {
		t.Fatalf("parsed %d records, want 3: %+v", len(recs), recs)
	}
	r := recs[0]
	if r.Pkg != "repro/internal/server" || r.Name != "BenchmarkQueryParse" ||
		r.Iters != 16950 || r.NsPerOp != 3381 || r.BytesPerOp != 2760 || r.AllocsPerOp != 36 {
		t.Errorf("record 0 = %+v", r)
	}
	if r.OpsPerSec < 295000 || r.OpsPerSec > 296000 {
		t.Errorf("ops/sec = %v, want ~295770", r.OpsPerSec)
	}
	sub := recs[1]
	if sub.Name != "BenchmarkQueryLoadedLedger/holds/commitments=10" {
		t.Errorf("sub-benchmark name = %q", sub.Name)
	}
	last := recs[2]
	if last.Pkg != "repro/internal/resource" || last.Name != "BenchmarkSetUnion-8" || last.NsPerOp != 2100.5 {
		t.Errorf("record 2 = %+v", last)
	}
	if last.BytesPerOp != 0 || last.AllocsPerOp != 0 {
		t.Errorf("record without -benchmem should leave mem fields zero: %+v", last)
	}
}

func TestParseIgnoresNoise(t *testing.T) {
	recs, err := parse(strings.NewReader("FAIL\nBenchmarkBroken\nsomething else\n"))
	if err != nil {
		t.Fatal(err)
	}
	if len(recs) != 0 {
		t.Fatalf("noise produced records: %+v", recs)
	}
}
