// Command rotad is the ROTA admission-control daemon: it maintains a
// live resource ledger sharded by location and serves admit / release /
// acquire / advance / query / stats over an HTTP JSON API, with every
// admission decided by the paper's Theorem 4 against the free (not yet
// reserved) availability.
//
// Usage:
//
//	rotad -addr :8080 -locations 4 -base 4 -horizon 100000
//	rotad -selftest -requests 1000 -clients 8
//	rotad -addr :8081 -node n1 -peers 'n1=http://h:8081=l1,l2;n2=http://h:8082=l3,l4'
//	rotad -selftest -cluster 3 -requests 1000 -clients 8
//
// In -selftest mode the daemon starts on a loopback port, hammers itself
// with a synthetic workload through the real HTTP stack, prints a
// throughput/latency table, audits the ledger invariant, and exits
// non-zero on any inconsistency.
//
// With -node/-peers (or -cluster-config) the daemon joins a static
// federation: it owns its peer-table locations, forwards jobs owned
// elsewhere, and coordinates jobs spanning owners with a two-phase
// leased reservation. -selftest -cluster N boots an N-node loopback
// cluster, injects a coordinator crash between prepare and commit,
// drives the load at every node, and verifies each node's
// no-overcommitment audit plus the lease-expiry sweep.
package main

import (
	"context"
	"errors"
	"flag"
	"fmt"
	"io"
	"net"
	"net/http"
	_ "net/http/pprof" // registers /debug/pprof on DefaultServeMux; gated by -pprof
	"os"
	"os/signal"
	"strings"
	"syscall"
	"time"

	"repro/internal/admission"
	"repro/internal/cluster"
	"repro/internal/interval"
	"repro/internal/metrics"
	"repro/internal/obs"
	"repro/internal/obs/assure"
	"repro/internal/obs/flightrec"
	"repro/internal/obs/span"
	"repro/internal/resource"
	"repro/internal/server"
	"repro/internal/workload"
)

func main() {
	if err := run(os.Args[1:], os.Stdout); err != nil {
		fmt.Fprintln(os.Stderr, "rotad:", err)
		os.Exit(1)
	}
}

func run(args []string, out io.Writer) error {
	fs := flag.NewFlagSet("rotad", flag.ContinueOnError)
	addr := fs.String("addr", ":8080", "listen address")
	policyName := fs.String("policy", "rota", "admission policy: rota or rota-exhaustive (must be plan-producing)")
	workers := fs.Int("workers", 0, "decision worker pool size (0 = GOMAXPROCS)")
	queue := fs.Int("queue", 0, "pending-decision queue depth (0 = 4x workers)")
	timeout := fs.Duration("timeout", 2*time.Second, "per-request decision deadline")
	admitBatch := fs.Bool("admit-batch", true, "batch concurrent admissions sharing a footprint on the hot path")
	admitRetries := fs.Int("admit-retries", 0, "optimistic plan/validate attempts before planning under shard locks (0 = default 3)")
	pessimisticAdmit := fs.Bool("pessimistic-admit", false, "restore the legacy plan-under-shard-locks admission path (benchmark baseline)")
	locations := fs.Int("locations", 4, "number of locations in the initial availability")
	baseRate := fs.Int64("base", 4, "cpu units/tick per location in the initial availability")
	linkRate := fs.Int64("link", 1, "network units/tick per directed link (full mesh)")
	horizon := fs.Int64("horizon", 100000, "initial availability horizon in ticks")
	extraTheta := fs.String("theta", "", "additional availability as a compact resource-set literal")
	selftest := fs.Bool("selftest", false, "run the built-in load test against an in-process daemon and exit")
	requests := fs.Int("requests", 1000, "selftest: total admit requests")
	clients := fs.Int("clients", 8, "selftest: concurrent clients")
	seed := fs.Int64("seed", 42, "selftest: workload seed")
	slack := fs.Float64("slack", 3, "selftest: deadline slack factor")
	csv := fs.Bool("csv", false, "selftest: emit CSV")
	node := fs.String("node", "", "cluster: this node's ID (must appear in the peer table)")
	peersSpec := fs.String("peers", "", "cluster: static peer table, id=url=l1,l2;id=url=l3,... (includes self)")
	clusterConfig := fs.String("cluster-config", "", "cluster: JSON peer-table file {\"nodes\":[{id,url,locations}]} (overrides -peers)")
	joinURL := fs.String("join", "", "cluster: URL of any live member; start as a dynamic joiner and acquire ownership from the steward (needs -node and -self-url)")
	selfURL := fs.String("self-url", "", "cluster: this node's advertised base URL, what other members will dial (required with -join)")
	pinSpec := fs.String("pin", "", "cluster: comma-separated locations to pin onto this node when joining")
	leaseTTL := fs.Int64("lease-ttl", 50, "cluster: prepare-lease TTL in ledger ticks")
	gossip := fs.Duration("gossip", time.Second, "cluster: gossip interval (negative disables)")
	rpcTimeout := fs.Duration("rpc-timeout", 2*time.Second, "cluster: per-attempt peer RPC deadline")
	rpcRetries := fs.Int("rpc-retries", 2, "cluster: retries per failed peer RPC (exponential backoff, jittered)")
	rpcBackoffBase := fs.Duration("rpc-backoff-base", 25*time.Millisecond, "cluster: first retry backoff (doubles per attempt)")
	rpcBackoffCap := fs.Duration("rpc-backoff-cap", 400*time.Millisecond, "cluster: exponential backoff ceiling")
	suspectPhi := fs.Float64("suspect-phi", 0, "cluster: φ-accrual level at which a peer is suspected (0 = detector default 8)")
	evictPhi := fs.Float64("evict-phi", 0, "cluster: φ level declaring a peer dead; > 0 also enables quorum auto-eviction (0 disables)")
	clusterN := fs.Int("cluster", 0, "selftest: boot an N-node loopback cluster instead of a single daemon")
	chaos := fs.Bool("chaos", false, "selftest: randomized kill/partition/heal schedule with automatic failure detection (needs -cluster >= 3)")
	metricsOn := fs.Bool("metrics", true, "serve the Prometheus text exposition on GET /metrics")
	assureOn := fs.Bool("assure", true, "track a deadline-assurance promise per admitted job (GET /v1/assure)")
	flightSize := fs.Int("flightrec-size", flightrec.DefaultEventCap, "anomaly flight-recorder event ring size (snapshots at GET /debug/rota/flightrec; 0 disables)")
	spanCap := fs.Int("span-store", span.DefaultCapacity, "span ring-buffer capacity (spans kept for GET /debug/rota/trace/{id}; 0 disables span tracing)")
	pprofOn := fs.Bool("pprof", false, "serve net/http/pprof under /debug/pprof/")
	slowMS := fs.Int("slow-ms", 0, "log admission decisions slower than this many milliseconds, with per-phase timings (0 disables)")
	logFormat := fs.String("log-format", "kv", "structured event log format: kv or json")
	if err := fs.Parse(args); err != nil {
		return err
	}

	format, err := obs.ParseFormat(*logFormat)
	if err != nil {
		return err
	}
	var spans *span.Store
	if *spanCap > 0 {
		spans = span.NewStore(*spanCap, *node)
	}
	// The assure ledger and flight recorder name their records after the
	// node; a single-node daemon has no -node, so fall back to the binary.
	recNode := *node
	if recNode == "" {
		recNode = "rotad"
	}
	var asr *assure.Ledger
	if *assureOn {
		asr = assure.New(recNode)
	}
	var rec *flightrec.Recorder
	if *flightSize > 0 {
		rec = flightrec.New(recNode, *flightSize, flightrec.DefaultSnapshotCap, spans)
	}
	// The daemon logs events to stderr; selftest modes keep the event
	// stream off (the cluster selftest wires its own per-node sinks). The
	// flight recorder tees the same stream into its ring so a snapshot
	// carries the lead-up to its trigger.
	var logSink io.Writer
	if !*selftest {
		logSink = os.Stderr
	}
	if rec != nil {
		if logSink != nil {
			logSink = io.MultiWriter(logSink, rec.Writer())
		} else {
			logSink = rec.Writer()
		}
	}
	observer := obs.New(obs.Options{
		Log:          logSink,
		Format:       format,
		Node:         *node,
		SlowDecision: time.Duration(*slowMS) * time.Millisecond,
	})

	var policy admission.Policy
	switch *policyName {
	case "rota":
		policy = &admission.Rota{}
	case "rota-exhaustive":
		policy = &admission.Rota{Exhaustive: true}
	default:
		return fmt.Errorf("unknown policy %q (rotad needs a plan-producing policy)", *policyName)
	}

	locs := make([]resource.Location, *locations)
	for i := range locs {
		locs[i] = resource.Location(fmt.Sprintf("l%d", i+1))
	}
	theta := baseTheta(locs, *baseRate, *linkRate, interval.Time(*horizon))
	if *extraTheta != "" {
		extra, err := resource.ParseSet(*extraTheta)
		if err != nil {
			return fmt.Errorf("bad -theta: %w", err)
		}
		theta = theta.Union(extra)
	}

	scfg := server.Config{
		Policy:           policy,
		Theta:            theta,
		Workers:          *workers,
		QueueDepth:       *queue,
		DecisionTimeout:  *timeout,
		Obs:              observer,
		Spans:            spans,
		Assure:           asr,
		FlightRec:        rec,
		AdmitRetries:     *admitRetries,
		NoAdmitBatch:     !*admitBatch,
		PessimisticAdmit: *pessimisticAdmit,
	}

	rpc := rpcConfig{
		timeout:     *rpcTimeout,
		retries:     *rpcRetries,
		backoffBase: *rpcBackoffBase,
		backoffCap:  *rpcBackoffCap,
		suspectPhi:  *suspectPhi,
		evictPhi:    *evictPhi,
	}

	if *selftest && *chaos {
		if *clusterN < 3 {
			return errors.New("-chaos needs -cluster N with N >= 3 (quorum eviction is undefined below 3 members)")
		}
		// Promise ledgers and flight recorders are strictly per node; the
		// selftest harnesses build their own from the knobs below.
		ccfg := scfg
		ccfg.Assure, ccfg.FlightRec = nil, nil
		return runChaosSelftest(out, chaosSelftestConfig{
			nodes:      *clusterN,
			locs:       locs,
			server:     ccfg,
			leaseTTL:   interval.Time(*leaseTTL),
			requests:   *requests,
			clients:    *clients,
			seed:       *seed,
			slack:      *slack,
			horizon:    interval.Time(*horizon),
			csv:        *csv,
			spanCap:    *spanCap,
			assureOn:   *assureOn,
			flightSize: *flightSize,
		})
	}
	if *selftest && *clusterN > 1 {
		ccfg := scfg
		ccfg.Assure, ccfg.FlightRec = nil, nil
		return runClusterSelftest(out, clusterSelftestConfig{
			nodes:      *clusterN,
			locs:       locs,
			server:     ccfg,
			leaseTTL:   interval.Time(*leaseTTL),
			requests:   *requests,
			clients:    *clients,
			seed:       *seed,
			slack:      *slack,
			horizon:    interval.Time(*horizon),
			csv:        *csv,
			spanCap:    *spanCap,
			assureOn:   *assureOn,
			flightSize: *flightSize,
		})
	}

	if *joinURL != "" {
		if *node == "" || *selfURL == "" {
			return errors.New("-join needs -node (this node's ID) and -self-url (its advertised URL)")
		}
		var pins []resource.Location
		for _, p := range strings.Split(*pinSpec, ",") {
			if p = strings.TrimSpace(p); p != "" {
				pins = append(pins, resource.Location(p))
			}
		}
		nd, err := cluster.New(rpc.apply(cluster.Config{
			Self:           *node,
			Peers:          []cluster.Peer{{ID: *node, URL: strings.TrimSuffix(*selfURL, "/")}},
			Join:           true,
			Server:         scfg,
			LeaseTTL:       interval.Time(*leaseTTL),
			GossipInterval: *gossip,
			Obs:            observer,
			Spans:          spans,
		}))
		if err != nil {
			return err
		}
		// The join RPC runs after the listener is up: the steward's
		// handoffs dial back into this node's install endpoint before the
		// join response arrives.
		join := func() error {
			ctx, cancel := context.WithTimeout(context.Background(), 60*time.Second)
			defer cancel()
			if err := nd.JoinCluster(ctx, strings.TrimSuffix(*joinURL, "/"), pins); err != nil {
				return fmt.Errorf("joining via %s: %w", *joinURL, err)
			}
			tbl := nd.Table()
			fmt.Fprintf(os.Stderr, "rotad: joined as %s (epoch %d, %d locations)\n",
				nd.ID(), tbl.Epoch, len(tbl.Locations(nd.ID())))
			return nil
		}
		return serveHandler(out, debugHandler(nd, *metricsOn, *pprofOn), nd.Shutdown, *addr,
			fmt.Sprintf("rotad: node %s joining cluster via %s", nd.ID(), *joinURL), join)
	}

	var peers []cluster.Peer
	switch {
	case *clusterConfig != "":
		peers, err = cluster.LoadPeersFile(*clusterConfig)
	case *peersSpec != "":
		peers, err = cluster.ParsePeers(*peersSpec)
	}
	if err != nil {
		return err
	}
	if len(peers) > 0 {
		if *node == "" {
			return errors.New("cluster mode needs -node naming this daemon in the peer table")
		}
		nd, err := cluster.New(rpc.apply(cluster.Config{
			Self:           *node,
			Peers:          peers,
			Server:         scfg,
			LeaseTTL:       interval.Time(*leaseTTL),
			GossipInterval: *gossip,
			Obs:            observer,
			Spans:          spans,
		}))
		if err != nil {
			return err
		}
		return serveHandler(out, debugHandler(nd, *metricsOn, *pprofOn), nd.Shutdown, *addr,
			fmt.Sprintf("rotad: node %s listening on %s (%d shards, %d peers)",
				nd.ID(), *addr, nd.Server().Ledger().NumShards(), len(peers)))
	}

	srv, err := server.New(scfg)
	if err != nil {
		return err
	}
	if *selftest {
		return runSelftest(out, srv, locs, *requests, *clients, *seed, *slack, interval.Time(*horizon), *csv)
	}
	return serveHandler(out, debugHandler(srv, *metricsOn, *pprofOn), srv.Shutdown, *addr,
		fmt.Sprintf("rotad: listening on %s (%d shards)", *addr, srv.Ledger().NumShards()))
}

// rpcConfig bundles the operator-tunable peer-RPC and failure-detector
// knobs so every cluster.New call site gets the same wiring. The
// resulting values are surfaced back at runtime in /v1/stats (rpc_config
// and health blocks).
type rpcConfig struct {
	timeout     time.Duration
	retries     int
	backoffBase time.Duration
	backoffCap  time.Duration
	suspectPhi  float64
	evictPhi    float64
}

func (r rpcConfig) apply(c cluster.Config) cluster.Config {
	c.RPCTimeout = r.timeout
	c.RPCRetries = r.retries
	c.RPCBackoffBase = r.backoffBase
	c.RPCBackoffCap = r.backoffCap
	c.SuspectPhi = r.suspectPhi
	c.EvictPhi = r.evictPhi
	return c
}

// baseTheta builds the initial availability: baseRate cpu per location
// plus a full mesh of linkRate links, all over (0, horizon).
func baseTheta(locs []resource.Location, baseRate, linkRate int64, horizon interval.Time) resource.Set {
	var theta resource.Set
	window := interval.New(0, horizon)
	for _, loc := range locs {
		if baseRate > 0 {
			theta.Add(resource.NewTerm(resource.FromUnits(baseRate), resource.CPUAt(loc), window))
		}
	}
	if linkRate > 0 {
		for _, src := range locs {
			for _, dst := range locs {
				if src != dst {
					theta.Add(resource.NewTerm(resource.FromUnits(linkRate), resource.Link(src, dst), window))
				}
			}
		}
	}
	return theta
}

// debugHandler layers the cmd-level debug surface over the daemon
// handler: /debug/pprof/* is served from DefaultServeMux only when
// enabled, and GET /metrics can be switched off entirely.
func debugHandler(h http.Handler, metricsOn, pprofOn bool) http.Handler {
	return http.HandlerFunc(func(w http.ResponseWriter, r *http.Request) {
		switch {
		case strings.HasPrefix(r.URL.Path, "/debug/pprof"):
			if !pprofOn {
				http.NotFound(w, r)
				return
			}
			http.DefaultServeMux.ServeHTTP(w, r)
		case r.URL.Path == "/metrics" && !metricsOn:
			http.NotFound(w, r)
		default:
			h.ServeHTTP(w, r)
		}
	})
}

// serveHandler runs a daemon (single-node server or cluster node) until
// SIGINT/SIGTERM, then drains gracefully: in-flight work finishes, new
// requests are refused, the listener closes. Any afterListen hooks run
// once the listener is accepting (a dynamic joiner's join RPC must not
// fire before the steward can dial back); a hook error aborts startup.
func serveHandler(out io.Writer, handler http.Handler, shutdown func(context.Context) error, addr, banner string, afterListen ...func() error) error {
	ln, err := net.Listen("tcp", addr)
	if err != nil {
		return err
	}
	httpSrv := &http.Server{Handler: handler}
	errCh := make(chan error, 1)
	go func() {
		err := httpSrv.Serve(ln)
		if !errors.Is(err, http.ErrServerClosed) {
			errCh <- err
		}
	}()
	fmt.Fprintln(out, banner)
	for _, hook := range afterListen {
		if err := hook(); err != nil {
			ctx, cancel := context.WithTimeout(context.Background(), 10*time.Second)
			defer cancel()
			_ = httpSrv.Shutdown(ctx)
			return err
		}
	}

	sigCh := make(chan os.Signal, 1)
	signal.Notify(sigCh, syscall.SIGINT, syscall.SIGTERM)
	select {
	case err := <-errCh:
		return err
	case sig := <-sigCh:
		fmt.Fprintf(out, "rotad: %v, draining\n", sig)
	}
	ctx, cancel := context.WithTimeout(context.Background(), 10*time.Second)
	defer cancel()
	if err := shutdown(ctx); err != nil {
		return err
	}
	if err := httpSrv.Shutdown(ctx); err != nil {
		return err
	}
	fmt.Fprintln(out, "rotad: drained")
	return nil
}

// runSelftest starts the daemon on a loopback port, drives the load
// generator at it over real HTTP, prints the report, and verifies the
// daemon's accounting and ledger invariants.
func runSelftest(out io.Writer, srv *server.Server, locs []resource.Location, requests, clients int, seed int64, slack float64, horizon interval.Time, csv bool) error {
	ln, err := net.Listen("tcp", "127.0.0.1:0")
	if err != nil {
		return err
	}
	httpSrv := &http.Server{Handler: srv}
	go func() { _ = httpSrv.Serve(ln) }()
	baseURL := "http://" + ln.Addr().String()
	defer func() {
		ctx, cancel := context.WithTimeout(context.Background(), 5*time.Second)
		defer cancel()
		_ = srv.Shutdown(ctx)
		_ = httpSrv.Shutdown(ctx)
	}()

	jobs, err := workload.Generate(workload.Config{
		Seed:             seed,
		Locations:        locs,
		NumJobs:          requests,
		MeanInterarrival: float64(horizon) / float64(requests+1) / 4,
		ActorsMin:        1,
		ActorsMax:        3,
		StepsMin:         1,
		StepsMax:         4,
		SendProb:         0.2,
		MigrateProb:      0.05,
		EvalWeightMax:    3,
		SlackFactor:      slack,
	})
	if err != nil {
		return err
	}

	report, err := server.RunLoad(context.Background(), server.LoadConfig{
		BaseURL:         baseURL,
		Jobs:            jobs,
		Requests:        requests,
		Clients:         clients,
		ReleaseAdmitted: true,
	})
	if err != nil {
		return err
	}
	stats, err := server.FetchStats(context.Background(), baseURL)
	if err != nil {
		return err
	}

	t := metrics.NewTable(
		fmt.Sprintf("rotad selftest: %d requests, %d clients", requests, clients),
		"metric", "value")
	t.AddRow("requests", report.Requests)
	t.AddRow("admitted", report.Admitted)
	t.AddRow("rejected", report.Rejected)
	t.AddRow("released", report.Released)
	t.AddRow("errors", report.Errors)
	t.AddRow("duration ms", float64(report.Duration.Microseconds())/1000)
	t.AddRow("throughput req/s", report.Throughput)
	t.AddRow("client p50 µs", report.P50US)
	t.AddRow("client p99 µs", report.P99US)
	t.AddRow("decision mean µs", stats.DecisionLatencyUS.Mean)
	t.AddRow("decision p50 µs", stats.DecisionLatencyUS.P50)
	t.AddRow("decision p99 µs", stats.DecisionLatencyUS.P99)
	t.AddRow("shards", stats.Shards)
	t.AddRow("live commitments", stats.Commitments)
	if csv {
		t.RenderCSV(out)
	} else {
		t.Render(out)
	}

	// The selftest doubles as an end-to-end acceptance check.
	if report.Errors > 0 {
		return fmt.Errorf("selftest: %d requests errored", report.Errors)
	}
	if stats.Decisions != stats.Admitted+stats.Rejected {
		return fmt.Errorf("selftest: decisions %d != admitted %d + rejected %d",
			stats.Decisions, stats.Admitted, stats.Rejected)
	}
	if int(stats.Decisions) != requests {
		return fmt.Errorf("selftest: daemon decided %d of %d requests", stats.Decisions, requests)
	}
	if stats.DecisionLatencyUS.P99 <= 0 {
		return errors.New("selftest: decision p99 latency is zero")
	}
	if report.Admitted == 0 {
		return errors.New("selftest: nothing admitted; workload or availability misconfigured")
	}
	// Query-layer probe: one-shot GET/POST agreement, then a standing
	// /v1/watch subscription must see the verdict flip when a reservation
	// lands, when it is released, when a leased hold arrives, and when
	// that lease expires in an advance sweep.
	httpc := &http.Client{Timeout: 10 * time.Second}
	if err := runQueryProbe(context.Background(), httpc, baseURL, locs[0], horizon); err != nil {
		return fmt.Errorf("selftest: query probe: %w", err)
	}
	fmt.Fprintln(out, "query probe ok")
	// Assure probe: every released admission must have resolved to a kept
	// promise, and nothing may have violated — a violation here means the
	// Theorem-4 check admitted something the ledger could not honor.
	if asr := srv.Assure(); asr != nil {
		as := asr.Stats()
		if as.Violated != 0 {
			return fmt.Errorf("selftest: %d promises violated (deadline assurance broken)", as.Violated)
		}
		if as.Kept+as.Active == 0 {
			return errors.New("selftest: promise ledger tracked nothing despite admissions")
		}
		fmt.Fprintf(out, "assure probe ok (%d kept, %d active, attainment %.3f)\n", as.Kept, as.Active, as.Attainment)
	}
	if err := srv.Ledger().Audit(); err != nil {
		return fmt.Errorf("selftest: %w", err)
	}
	fmt.Fprintln(out, "selftest ok")
	return nil
}
