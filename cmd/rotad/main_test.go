package main

import (
	"bytes"
	"strings"
	"testing"
)

// TestSelftestEndToEnd is the acceptance run: a real daemon on a
// loopback port, ≥1000 admission requests over HTTP from ≥4 concurrent
// clients, with the selftest's own consistency checks (admit+reject ==
// total, nonzero p99, clean ledger audit) enforced by run's error.
func TestSelftestEndToEnd(t *testing.T) {
	var out bytes.Buffer
	err := run([]string{
		"-selftest",
		"-requests", "1000",
		"-clients", "4",
		"-locations", "4",
		"-seed", "7",
	}, &out)
	if err != nil {
		t.Fatalf("selftest failed: %v\n%s", err, out.String())
	}
	if !strings.Contains(out.String(), "selftest ok") {
		t.Fatalf("selftest output missing verdict:\n%s", out.String())
	}
	for _, want := range []string{"throughput req/s", "decision p99 µs", "admitted", "query probe ok"} {
		if !strings.Contains(out.String(), want) {
			t.Errorf("selftest table missing %q:\n%s", want, out.String())
		}
	}
}

// TestClusterSelftestEndToEnd boots the 3-node loopback cluster so the
// cross-node probes — including the query fan-out equivalence check and
// the watch flipped by a coordinated admission — run under the test
// race detector.
func TestClusterSelftestEndToEnd(t *testing.T) {
	var out bytes.Buffer
	err := run([]string{
		"-selftest",
		"-cluster", "3",
		"-requests", "150",
		"-clients", "4",
		"-locations", "6",
		"-seed", "7",
	}, &out)
	if err != nil {
		t.Fatalf("cluster selftest failed: %v\n%s", err, out.String())
	}
	for _, want := range []string{"cluster query probe ok", "cluster selftest ok"} {
		if !strings.Contains(out.String(), want) {
			t.Errorf("cluster selftest output missing %q:\n%s", want, out.String())
		}
	}
}

// TestChaosSelftest runs the randomized kill/partition/heal schedule
// under live load: automatic φ-accrual detection, quorum eviction,
// fence-and-rejoin, and the no-lost-reservations invariant all under
// the test race detector.
func TestChaosSelftest(t *testing.T) {
	if testing.Short() {
		t.Skip("chaos schedule takes seconds; skipped in -short")
	}
	var out bytes.Buffer
	err := run([]string{
		"-selftest",
		"-chaos",
		"-cluster", "3",
		"-requests", "150",
		"-clients", "4",
		"-locations", "6",
		"-seed", "7",
	}, &out)
	if err != nil {
		t.Fatalf("chaos selftest failed: %v\n%s", err, out.String())
	}
	if !strings.Contains(out.String(), "chaos selftest ok") {
		t.Errorf("chaos selftest output missing %q:\n%s", "chaos selftest ok", out.String())
	}
}

// TestChaosNeedsCluster: -chaos without a big enough -cluster must be
// refused with a clear error, not hang waiting for a quorum that can
// never form.
func TestChaosNeedsCluster(t *testing.T) {
	var out bytes.Buffer
	if err := run([]string{"-selftest", "-chaos", "-cluster", "2"}, &out); err == nil {
		t.Fatal("chaos selftest with 2 nodes should be refused (quorum eviction is undefined below 3 members)")
	}
}

func TestSelftestCSV(t *testing.T) {
	var out bytes.Buffer
	err := run([]string{
		"-selftest", "-requests", "40", "-clients", "4", "-csv",
	}, &out)
	if err != nil {
		t.Fatalf("selftest -csv: %v\n%s", err, out.String())
	}
	if !strings.Contains(out.String(), "requests,40") {
		t.Errorf("csv output missing requests row:\n%s", out.String())
	}
}

func TestRunRejectsBadFlags(t *testing.T) {
	var out bytes.Buffer
	if err := run([]string{"-policy", "naive-total"}, &out); err == nil {
		t.Fatal("accepted a plan-less policy")
	}
	if err := run([]string{"-theta", "garbage::("}, &out); err == nil {
		t.Fatal("accepted a malformed -theta literal")
	}
}
