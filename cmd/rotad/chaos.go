package main

import (
	"bytes"
	"context"
	"encoding/json"
	"errors"
	"fmt"
	"io"
	"math/rand"
	"net"
	"net/http"
	"sort"
	"strings"
	"sync"
	"time"

	"repro/internal/cluster"
	"repro/internal/fault"
	"repro/internal/interval"
	"repro/internal/metrics"
	"repro/internal/obs"
	"repro/internal/obs/assure"
	"repro/internal/obs/flightrec"
	"repro/internal/obs/span"
	"repro/internal/resource"
	"repro/internal/server"
	"repro/internal/workload"
)

// The chaos selftest is the acceptance harness for the self-healing
// layer: an N-node loopback federation wired through the fault-injection
// transport, a seeded kill/partition/heal schedule applied while a load
// generator keeps hammering the stable nodes, and no operator anywhere —
// every eviction must come from the φ-accrual detector plus the quorum
// rule, every promotion from the deterministic runner-up steward, and
// every fenced node must find its own way back in.
//
// Acceptance, enforced below:
//   - no committed reservation is lost across any kill or partition
//     (one home per seed commitment, on every surviving ledger set);
//   - every node's no-overcommitment audit stays clean throughout;
//   - ownership converges: one table, every location owned by a live
//     member, after the schedule ends;
//   - detection-to-first-admit latency on a killed owner's location is
//     bounded (chaosAdmitBound, generous for race-detector runs).
const (
	// chaosGossip is deliberately fast so φ crosses the eviction level in
	// well under a second of silence; chaosEvictPhi is set high enough
	// that a scheduler stall of several intervals does not read as death
	// under the race detector.
	chaosGossip     = 40 * time.Millisecond
	chaosSuspectPhi = 6
	chaosEvictPhi   = 9
	chaosRPCTimeout = 500 * time.Millisecond
	chaosRPCRetries = 1
	chaosAdmitBound = 30 * time.Second
)

type chaosSelftestConfig struct {
	nodes      int
	locs       []resource.Location
	server     server.Config
	leaseTTL   interval.Time
	requests   int
	clients    int
	seed       int64
	slack      float64
	horizon    interval.Time
	csv        bool
	spanCap    int
	assureOn   bool
	flightSize int
}

// chaosMember is one node slot in the harness. A kill round tears the
// slot down and restarts it as a fresh dynamic joiner under the same ID,
// so the slice indexes stay meaningful across the whole schedule.
type chaosMember struct {
	id    string
	url   string
	nd    *cluster.Node
	http  *http.Server
	alive bool
}

// chaosLog is a concurrency-safe log sink: each node's Observer writes
// under its own lock, but the failure dump below reads while the nodes
// are still running.
type chaosLog struct {
	mu  sync.Mutex
	buf bytes.Buffer
}

func (l *chaosLog) Write(p []byte) (int, error) {
	l.mu.Lock()
	defer l.mu.Unlock()
	return l.buf.Write(p)
}

func (l *chaosLog) String() string {
	l.mu.Lock()
	defer l.mu.Unlock()
	return l.buf.String()
}

// dumpChaosLogs prints every failover-relevant log line the nodes wrote,
// grouped by node, so a failed schedule leaves a usable trail instead of
// a bare assertion message.
func dumpChaosLogs(out io.Writer, logs map[string]*chaosLog) {
	ids := make([]string, 0, len(logs))
	for id := range logs {
		ids = append(ids, id)
	}
	sort.Strings(ids)
	for _, id := range ids {
		fmt.Fprintf(out, "--- %s failover log ---\n", id)
		for _, line := range strings.Split(logs[id].String(), "\n") {
			if strings.Contains(line, "health.") || strings.Contains(line, "membership.") || strings.Contains(line, "rpc.") {
				fmt.Fprintln(out, line)
			}
		}
	}
}

// chaosLoadTotals accumulates the background batches that ran while the
// schedule was underway.
type chaosLoadTotals struct {
	batches     int
	requests    int
	admitted    int
	rejected    int
	errors      int
	releaseErrs int
	redirects   int
	firstErr    string
	runErr      error
}

func runChaosSelftest(out io.Writer, cfg chaosSelftestConfig) (err error) {
	if len(cfg.locs) < cfg.nodes {
		return fmt.Errorf("chaos selftest: %d nodes need at least %d locations (raise -locations)", cfg.nodes, cfg.nodes)
	}
	if cfg.leaseTTL <= 0 {
		cfg.leaseTTL = 50
	}
	net0 := fault.NewNetwork(cfg.seed)
	rng := rand.New(rand.NewSource(cfg.seed))
	ctx := context.Background()
	httpc := &http.Client{Timeout: 10 * time.Second}

	logs := make(map[string]*chaosLog) // restarted slots keep appending to the same sink
	defer func() {
		if err != nil {
			dumpChaosLogs(out, logs)
		}
	}()
	newNode := func(id, url string, peers []cluster.Peer, join bool) (*cluster.Node, error) {
		lg := logs[id]
		if lg == nil {
			lg = &chaosLog{}
			logs[id] = lg
		}
		var spans *span.Store
		if cfg.spanCap > 0 {
			spans = span.NewStore(cfg.spanCap, id)
		}
		// Each node gets its own promise ledger and flight recorder; a
		// restarted slot starts both fresh, like any rejoining daemon. The
		// recorder tees the node's event log so its snapshots carry the
		// lead-up to each trigger.
		scfg := cfg.server
		if cfg.assureOn {
			scfg.Assure = assure.New(id)
		}
		var sink io.Writer = lg
		if cfg.flightSize > 0 {
			rec := flightrec.New(id, cfg.flightSize, flightrec.DefaultSnapshotCap, spans)
			scfg.FlightRec = rec
			sink = io.MultiWriter(lg, rec.Writer())
		}
		return cluster.New(cluster.Config{
			Self:           id,
			Peers:          peers,
			Join:           join,
			Server:         scfg,
			LeaseTTL:       cfg.leaseTTL,
			GossipInterval: chaosGossip,
			RPCTimeout:     chaosRPCTimeout,
			RPCRetries:     chaosRPCRetries,
			RPCBackoffBase: 10 * time.Millisecond,
			RPCBackoffCap:  100 * time.Millisecond,
			SuspectPhi:     chaosSuspectPhi,
			EvictPhi:       chaosEvictPhi, // > 0: automatic quorum eviction ON
			Transport:      net0.Transport(id, nil),
			Obs:            obs.New(obs.Options{Log: sink, Node: id}),
			Spans:          spans,
		})
	}

	// Boot the static seed cluster.
	listeners := make([]net.Listener, cfg.nodes)
	peers := make([]cluster.Peer, cfg.nodes)
	parts := cluster.PartitionLocations(cfg.locs, cfg.nodes)
	for i := range listeners {
		ln, err := net.Listen("tcp", "127.0.0.1:0")
		if err != nil {
			return err
		}
		listeners[i] = ln
		peers[i] = cluster.Peer{
			ID:        fmt.Sprintf("n%d", i+1),
			URL:       "http://" + ln.Addr().String(),
			Locations: parts[i],
		}
		net0.Register(peers[i].ID, peers[i].URL)
	}
	members := make([]*chaosMember, cfg.nodes)
	for i := range members {
		nd, err := newNode(peers[i].ID, peers[i].URL, peers, false)
		if err != nil {
			return err
		}
		m := &chaosMember{id: peers[i].ID, url: peers[i].URL, nd: nd, http: &http.Server{Handler: nd}, alive: true}
		members[i] = m
		go func(srv *http.Server, ln net.Listener) { _ = srv.Serve(ln) }(m.http, listeners[i])
	}
	defer func() {
		ctx, cancel := context.WithTimeout(context.Background(), 5*time.Second)
		defer cancel()
		for _, m := range members {
			if m.alive {
				_ = m.nd.Shutdown(ctx)
				m.http.Close()
			}
		}
	}()
	alive := func() []*chaosMember {
		var out []*chaosMember
		for _, m := range members {
			if m.alive {
				out = append(out, m)
			}
		}
		return out
	}

	// Seed one pinned commitment per location: the reservations whose
	// survival the whole schedule is judged by.
	for _, loc := range cfg.locs {
		job, err := pinnedJob("chaos-seed-"+string(loc), loc, 0, cfg.horizon)
		if err != nil {
			return err
		}
		status, data, err := postJSON(ctx, httpc, members[0].url+"/v1/admit", job)
		var v server.AdmitResponse
		if jerr := json.Unmarshal(data, &v); err != nil || status != http.StatusOK || jerr != nil || !v.Admit {
			return fmt.Errorf("chaos selftest: seed on %s not admitted (status %d, err %v, body %s)",
				loc, status, err, bytes.TrimSpace(data))
		}
	}
	if err := waitShadowsWarm(members, cfg.locs, 15*time.Second); err != nil {
		return fmt.Errorf("chaos selftest: %w", err)
	}

	// A mildly hostile wire for the whole run: every peer RPC is delayed
	// and occasionally dropped, so the retry/backoff stack and the
	// detector's adaptive window run against realistic jitter.
	net0.SetRule(fault.Wildcard, fault.Wildcard, fault.Rule{Delay: time.Millisecond, Drop: 0.01})

	// Background load against the stable nodes (index 0 and 1 are never
	// victims), batch after batch until the schedule ends. Request errors
	// during a failure window are expected — what must hold is the ledger
	// invariant, not per-request success.
	stableURLs := []string{members[0].url, members[1].url}
	stopLoad := make(chan struct{})
	loadDone := make(chan chaosLoadTotals, 1)
	go func() {
		var tot chaosLoadTotals
		for batch := int64(0); ; batch++ {
			select {
			case <-stopLoad:
				loadDone <- tot
				return
			default:
			}
			jobs, err := workload.Generate(workload.Config{
				Seed:             cfg.seed + 100 + batch,
				Locations:        cfg.locs,
				NumJobs:          cfg.requests,
				MeanInterarrival: float64(cfg.horizon) / float64(cfg.requests+1) / 4,
				ActorsMin:        1,
				ActorsMax:        2,
				StepsMin:         1,
				StepsMax:         3,
				SendProb:         0.2,
				EvalWeightMax:    2,
				SlackFactor:      cfg.slack,
			})
			if err != nil {
				tot.runErr = err
				loadDone <- tot
				return
			}
			for i := range jobs {
				jobs[i].Dist.Name = fmt.Sprintf("chaos-%d-%s", batch, jobs[i].Dist.Name)
			}
			r, err := server.RunLoad(ctx, server.LoadConfig{
				BaseURLs:        stableURLs,
				Jobs:            jobs,
				Requests:        len(jobs),
				Clients:         cfg.clients,
				ReleaseAdmitted: true,
			})
			if err != nil {
				tot.runErr = err
				loadDone <- tot
				return
			}
			tot.batches++
			tot.requests += r.Requests
			tot.admitted += r.Admitted
			tot.rejected += r.Rejected
			tot.errors += r.Errors
			tot.releaseErrs += r.ReleaseErrors
			tot.redirects += r.Redirects
			if tot.firstErr == "" {
				tot.firstErr = r.FirstError
			}
		}
	}()

	// The schedule: at least one kill and one partition, victims drawn
	// from the non-stable slots by the seeded RNG.
	type roundResult struct {
		kind     string
		victim   string
		detectMS float64 // kill/partition to victim gone from every survivor table
		admitMS  float64 // kill to first successful admit on the victim's location (kill rounds)
	}
	rounds := []string{"kill", "partition"}
	var results []roundResult
	killSerial := 0
	for _, kind := range rounds {
		// A cold φ detector cannot tell silence from a peer that never
		// spoke: every member needs its inter-arrival baseline (MinSamples
		// observations of every other member) before a failure is staged.
		if err := waitDetectorsWarm(alive(), 45*time.Second); err != nil {
			return fmt.Errorf("chaos selftest: before %s round: %w", kind, err)
		}
		vi := 2 + rng.Intn(cfg.nodes-2)
		victim := members[vi]
		vlocs := victim.nd.Table().Locations(victim.id)
		if len(vlocs) == 0 {
			// The rendezvous shuffle can leave a node location-less; the
			// failover latency probe needs an owned location, so fall
			// back to any slot that has one.
			for off := 1; off < cfg.nodes-2; off++ {
				alt := members[2+(vi-2+off)%(cfg.nodes-2)]
				if locs := alt.nd.Table().Locations(alt.id); len(locs) > 0 {
					victim, vlocs = alt, locs
					break
				}
			}
		}
		if len(vlocs) == 0 {
			return fmt.Errorf("chaos selftest: no non-stable node owns a location; cannot stage a %s round", kind)
		}
		res := roundResult{kind: kind, victim: victim.id}

		switch kind {
		case "kill":
			killedAt := time.Now()
			victim.http.Close() // inbound gone
			sctx, cancel := context.WithTimeout(ctx, 10*time.Second)
			err := victim.nd.Shutdown(sctx) // outbound gossip gone: true silence
			cancel()
			if err != nil {
				return fmt.Errorf("chaos selftest: killing %s: %w", victim.id, err)
			}
			victim.alive = false
			if err := waitEvicted(alive(), victim.id, chaosAdmitBound); err != nil {
				return fmt.Errorf("chaos selftest: kill round: %w", err)
			}
			res.detectMS = msSince(killedAt)

			// Detection-to-first-admit: hammer the dead owner's first
			// location through a stable node until an admission lands on
			// the promoted standby.
			for attempt := 0; ; attempt++ {
				probe, err := pinnedJob(fmt.Sprintf("chaos-kill-%d-%d", killSerial, attempt), vlocs[0], 0, cfg.horizon)
				if err != nil {
					return err
				}
				status, data, err := postJSON(ctx, httpc, members[0].url+"/v1/admit", probe)
				var v server.AdmitResponse
				if err == nil && status == http.StatusOK && json.Unmarshal(data, &v) == nil && v.Admit {
					res.admitMS = msSince(killedAt)
					break
				}
				if time.Since(killedAt) > chaosAdmitBound {
					return fmt.Errorf("chaos selftest: no admit on %s within %s of killing its owner (last status %d, err %v)",
						vlocs[0], chaosAdmitBound, status, err)
				}
				time.Sleep(20 * time.Millisecond)
			}
			killSerial++

			// Restart the slot as a brand-new dynamic joiner under the
			// same ID: the fresh node must be handed ownership while the
			// load keeps running.
			ln, err := net.Listen("tcp", "127.0.0.1:0")
			if err != nil {
				return err
			}
			victim.url = "http://" + ln.Addr().String()
			net0.Register(victim.id, victim.url)
			nd, err := newNode(victim.id, victim.url, []cluster.Peer{{ID: victim.id, URL: victim.url}}, true)
			if err != nil {
				return fmt.Errorf("chaos selftest: restarting %s: %w", victim.id, err)
			}
			victim.nd = nd
			victim.http = &http.Server{Handler: nd}
			go func(srv *http.Server, ln net.Listener) { _ = srv.Serve(ln) }(victim.http, ln)
			jctx, cancel := context.WithTimeout(ctx, 30*time.Second)
			err = nd.JoinCluster(jctx, members[0].url, nil)
			cancel()
			if err != nil {
				return fmt.Errorf("chaos selftest: %s rejoining after kill: %w", victim.id, err)
			}
			victim.alive = true
			if err := waitMember(alive(), victim.id, 15*time.Second); err != nil {
				return fmt.Errorf("chaos selftest: restarted %s: %w", victim.id, err)
			}

		case "partition":
			cutAt := time.Now()
			net0.Partition([]string{victim.id}) // victim alone vs. everyone
			survivors := make([]*chaosMember, 0, len(members))
			for _, m := range alive() {
				if m.id != victim.id {
					survivors = append(survivors, m)
				}
			}
			if err := waitEvicted(survivors, victim.id, chaosAdmitBound); err != nil {
				return fmt.Errorf("chaos selftest: partition round: %w", err)
			}
			res.detectMS = msSince(cutAt)

			// Heal. The victim is alive with a stale table; its next
			// gossip push is fenced with 421 by the survivors, and it
			// must drop its state and rejoin entirely on its own.
			net0.Heal()
			if err := waitMember(alive(), victim.id, chaosAdmitBound); err != nil {
				return fmt.Errorf("chaos selftest: %s never rejoined after heal: %w", victim.id, err)
			}
			// The survivors list the victim as soon as the steward
			// commits the join; the victim bumps its own counter only
			// after its JoinCluster call returns — poll briefly rather
			// than racing that gap.
			rejoinDeadline := time.Now().Add(5 * time.Second)
			for victim.nd.Stats().Cluster.Rejoins < 1 {
				if time.Now().After(rejoinDeadline) {
					return fmt.Errorf("chaos selftest: healed %s recorded %d rejoins, want >= 1 (rejoin must be automatic)",
						victim.id, victim.nd.Stats().Cluster.Rejoins)
				}
				time.Sleep(20 * time.Millisecond)
			}
		}
		results = append(results, res)
	}

	// Schedule over: stop the load, clean the wire, and let the cluster
	// settle into one converged table.
	close(stopLoad)
	tot := <-loadDone
	if tot.runErr != nil {
		return fmt.Errorf("chaos selftest: load generator: %w", tot.runErr)
	}
	net0.ClearRules()
	net0.Heal()
	if err := waitConverged(alive(), cfg.locs, 20*time.Second); err != nil {
		return fmt.Errorf("chaos selftest: %w", err)
	}

	// No committed reservation lost: every seed lives on exactly one
	// surviving ledger. Checked before the sweep below — the ledger
	// clock has not moved during the schedule, so a missing seed here
	// means failover dropped it; after Advance the seeds complete
	// legitimately (their plans finish long before the sweep point) and
	// vanish from the commit table by design.
	liveNodes := make([]*cluster.Node, 0, len(members))
	for _, m := range alive() {
		liveNodes = append(liveNodes, m.nd)
	}
	for _, loc := range cfg.locs {
		name := "chaos-seed-" + string(loc)
		if homes := ledgerHomes(liveNodes, name); homes != 1 {
			owner, _ := liveNodes[0].Table().OwnerOf(loc)
			var held []string
			for _, m := range alive() {
				if _, ok := m.nd.Server().Ledger().Commitment(name); ok {
					held = append(held, m.id)
				}
			}
			return fmt.Errorf("chaos selftest: %s lives on %d ledgers after the schedule, want exactly 1 (loc owned by %s, held on %v)",
				name, homes, owner, held)
		}
	}

	// Sweep every lease orphaned by a mid-protocol failure, then audit.
	sweepAt := cfg.leaseTTL * 4
	status, _, err := postJSON(ctx, httpc, members[0].url+"/v1/cluster/advance", map[string]any{"now": sweepAt})
	if err != nil || status != http.StatusOK {
		return fmt.Errorf("chaos selftest: advance sweep: status %d, err %v", status, err)
	}
	for _, m := range alive() {
		if holds := m.nd.Server().Ledger().NumHolds(); holds != 0 {
			return fmt.Errorf("chaos selftest: node %s still has %d leased holds after the sweep", m.id, holds)
		}
		if err := m.nd.Server().Ledger().Audit(); err != nil {
			return fmt.Errorf("chaos selftest: node %s audit: %w", m.id, err)
		}
	}

	// Counter cross-checks: the evictions really were automatic (nothing
	// in this harness ever calls /v1/cluster/leave), the fence fired, and
	// the partitioned node came back by itself.
	var evictions, rejoins, fenced, repairs, promotions uint64
	for _, m := range alive() {
		st := m.nd.Stats().Cluster
		evictions += st.AutoEvictions
		rejoins += st.Rejoins
		fenced += st.FencedGossip
		repairs += st.IntentRepairs
		promotions += st.Promotions
	}
	if evictions < 1 {
		return errors.New("chaos selftest: no automatic evictions recorded; the failure detector never fired")
	}
	if rejoins < 1 {
		return errors.New("chaos selftest: no automatic rejoins recorded; the healed partition never fenced its victim back in")
	}
	if fenced < 1 {
		return errors.New("chaos selftest: no gossip was fenced with 421; the epoch fence never engaged")
	}
	if tot.admitted == 0 {
		return errors.New("chaos selftest: background load admitted nothing; the schedule was not exercised under load")
	}

	// Deadline-assurance acceptance: across every kill, partition, and
	// promotion, no node may report a violated promise — failover must
	// carry each admitted job's deadline window intact — and kept
	// promises must exist, or the ledger tracked nothing. Read through
	// the cluster fan-out so the endpoint itself is exercised.
	var assureTotals assure.Stats
	if cfg.assureOn {
		var resp cluster.ClusterAssureResponse
		if err := getJSON(ctx, httpc, members[0].url+"/v1/assure", &resp); err != nil {
			return fmt.Errorf("chaos selftest: cluster assure fan-out: %w", err)
		}
		assureTotals = resp.Totals
		for id, rep := range resp.Nodes {
			if rep.Stats.Violated != 0 {
				return fmt.Errorf("chaos selftest: node %s reports %d violated promises; failover broke a deadline window", id, rep.Stats.Violated)
			}
		}
		if assureTotals.Violated != 0 {
			return fmt.Errorf("chaos selftest: %d promises violated across the cluster, want 0", assureTotals.Violated)
		}
		if assureTotals.Kept == 0 {
			return errors.New("chaos selftest: no kept promises recorded despite admitted load")
		}
	}

	// Flight-recorder acceptance: the automatic evictions above must have
	// frozen snapshots on the survivors, and merging them — the exact
	// code path rotadoctor runs — must reconstruct at least one connected
	// trace spanning two or more nodes.
	var incident *flightrec.Incident
	if cfg.flightSize > 0 {
		var snaps []flightrec.Snapshot
		for _, m := range alive() {
			var idx server.FlightRecIndex
			if err := getJSON(ctx, httpc, m.url+"/debug/rota/flightrec", &idx); err != nil {
				return fmt.Errorf("chaos selftest: flightrec index from %s: %w", m.id, err)
			}
			snaps = append(snaps, idx.Snapshots...)
		}
		if len(snaps) == 0 {
			return errors.New("chaos selftest: no flight-recorder snapshots despite quorum evictions")
		}
		incident = flightrec.Merge(snaps)
		if len(incident.CrossNode) == 0 {
			var buf bytes.Buffer
			incident.WriteReport(&buf, 40)
			return fmt.Errorf("chaos selftest: %d snapshots from %v merged into no connected cross-node trace:\n%s",
				len(snaps), incident.Nodes, buf.String())
		}
	}

	fc := net0.Counters()
	t := metrics.NewTable(
		fmt.Sprintf("rotad chaos selftest: %d nodes, seed %d, %d load batches", cfg.nodes, cfg.seed, tot.batches),
		"metric", "value")
	t.AddRow("load requests", tot.requests)
	t.AddRow("load admitted", tot.admitted)
	t.AddRow("load rejected", tot.rejected)
	t.AddRow("load errors (failure windows)", tot.errors)
	t.AddRow("load release errors", tot.releaseErrs)
	t.AddRow("load redirects followed", tot.redirects)
	for i, r := range results {
		t.AddRow(fmt.Sprintf("round %d", i+1), fmt.Sprintf("%s %s", r.kind, r.victim))
		t.AddRow(fmt.Sprintf("round %d detect+evict ms", i+1), r.detectMS)
		if r.kind == "kill" {
			t.AddRow(fmt.Sprintf("round %d kill to first admit ms", i+1), r.admitMS)
		}
	}
	t.AddRow("auto evictions", evictions)
	t.AddRow("auto rejoins", rejoins)
	t.AddRow("fenced gossip 421s", fenced)
	t.AddRow("intent repairs", repairs)
	t.AddRow("standby promotions", promotions)
	if cfg.assureOn {
		t.AddRow("promises kept", assureTotals.Kept)
		t.AddRow("promises violated", assureTotals.Violated)
		t.AddRow("promises transferred", assureTotals.Transferred)
		t.AddRow("promises evicted with job", assureTotals.EvictedWithJob)
		t.AddRow("slo attainment", assureTotals.Attainment)
	}
	if incident != nil {
		t.AddRow("flight snapshots merged", len(incident.Snapshots))
		t.AddRow("cross-node traces", len(incident.CrossNode))
	}
	t.AddRow("wire passed", fc.Passed)
	t.AddRow("wire dropped", fc.Dropped)
	t.AddRow("wire partition drops", fc.Partition)
	t.AddRow("membership epoch", members[0].nd.Table().Epoch)
	if cfg.csv {
		t.RenderCSV(out)
	} else {
		t.Render(out)
	}
	if incident != nil {
		fmt.Fprintln(out)
		incident.WriteReport(out, 20)
	}
	fmt.Fprintln(out, "chaos selftest ok")
	return nil
}

// getJSON fetches a URL and decodes its JSON body, failing on non-200.
func getJSON(ctx context.Context, client *http.Client, url string, v any) error {
	req, err := http.NewRequestWithContext(ctx, http.MethodGet, url, nil)
	if err != nil {
		return err
	}
	resp, err := client.Do(req)
	if err != nil {
		return err
	}
	defer resp.Body.Close()
	data, err := io.ReadAll(io.LimitReader(resp.Body, 64<<20))
	if err != nil {
		return err
	}
	if resp.StatusCode != http.StatusOK {
		return fmt.Errorf("%s returned %d: %s", url, resp.StatusCode, bytes.TrimSpace(data))
	}
	return json.Unmarshal(data, v)
}

func msSince(t time.Time) float64 { return float64(time.Since(t).Microseconds()) / 1000 }

// waitShadowsWarm blocks until every location's rendezvous runner-up
// holds a shadow with at least one commitment — the seeds must be
// survivable before anything is allowed to die.
func waitShadowsWarm(members []*chaosMember, locs []resource.Location, timeout time.Duration) error {
	byID := make(map[string]*chaosMember, len(members))
	for _, m := range members {
		byID[m.id] = m
	}
	deadline := time.Now().Add(timeout)
	for {
		warm := true
		var cold resource.Location
		tbl := members[0].nd.Table()
		for _, loc := range locs {
			standby := byID[tbl.StandbyOf(loc)]
			if standby == nil {
				return fmt.Errorf("standby of %s is not a member", loc)
			}
			if cms, _, ok := standby.nd.ShadowFor(loc); !ok || cms < 1 {
				warm, cold = false, loc
				break
			}
		}
		if warm {
			return nil
		}
		if time.Now().After(deadline) {
			return fmt.Errorf("shadow for %s never warmed on its standby", cold)
		}
		time.Sleep(20 * time.Millisecond)
	}
}

// waitDetectorsWarm blocks until every live member's φ detector holds at
// least MinSamples inter-arrival observations for every other live
// member — the baseline without which silence carries no suspicion.
func waitDetectorsWarm(ms []*chaosMember, timeout time.Duration) error {
	deadline := time.Now().Add(timeout)
	for {
		warm := true
		var cold string
		for _, m := range ms {
			samples := make(map[string]int)
			for _, ph := range m.nd.Stats().Health.Peers {
				samples[ph.Peer] = ph.Samples
			}
			for _, other := range ms {
				if other.id != m.id && samples[other.id] < 3 {
					warm = false
					cold = fmt.Sprintf("%s has %d samples for %s", m.id, samples[other.id], other.id)
				}
			}
		}
		if warm {
			return nil
		}
		if time.Now().After(deadline) {
			return fmt.Errorf("failure detectors never warmed within %s (%s)", timeout, cold)
		}
		time.Sleep(20 * time.Millisecond)
	}
}

// waitEvicted blocks until none of the given nodes' tables list victim.
func waitEvicted(ms []*chaosMember, victim string, timeout time.Duration) error {
	deadline := time.Now().Add(timeout)
	for {
		gone := true
		for _, m := range ms {
			if _, ok := m.nd.Table().Member(victim); ok {
				gone = false
				break
			}
		}
		if gone {
			return nil
		}
		if time.Now().After(deadline) {
			return fmt.Errorf("%s was never auto-evicted within %s", victim, timeout)
		}
		time.Sleep(20 * time.Millisecond)
	}
}

// waitMember blocks until every given node's table lists id as a member.
func waitMember(ms []*chaosMember, id string, timeout time.Duration) error {
	deadline := time.Now().Add(timeout)
	for {
		everywhere := true
		for _, m := range ms {
			if _, ok := m.nd.Table().Member(id); !ok {
				everywhere = false
				break
			}
		}
		if everywhere {
			return nil
		}
		if time.Now().After(deadline) {
			return fmt.Errorf("%s never (re)appeared in every member's table within %s", id, timeout)
		}
		time.Sleep(20 * time.Millisecond)
	}
}

// waitConverged blocks until all nodes agree on one table epoch and every
// location is owned by a live member.
func waitConverged(ms []*chaosMember, locs []resource.Location, timeout time.Duration) error {
	liveIDs := make(map[string]bool, len(ms))
	for _, m := range ms {
		liveIDs[m.id] = true
	}
	deadline := time.Now().Add(timeout)
	for {
		ok := true
		epoch := ms[0].nd.Table().Epoch
		for _, m := range ms {
			tbl := m.nd.Table()
			if tbl.Epoch != epoch {
				ok = false
				break
			}
			for _, loc := range locs {
				owner, found := tbl.OwnerOf(loc)
				if !found || !liveIDs[owner] {
					ok = false
					break
				}
			}
			if !ok {
				break
			}
		}
		if ok {
			return nil
		}
		if time.Now().After(deadline) {
			return fmt.Errorf("ownership never converged within %s (epochs and owners still disagree)", timeout)
		}
		time.Sleep(20 * time.Millisecond)
	}
}
