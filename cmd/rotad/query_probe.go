package main

import (
	"bufio"
	"context"
	"encoding/json"
	"fmt"
	"io"
	"net/http"
	neturl "net/url"
	"strings"
	"time"

	"repro/internal/interval"
	"repro/internal/query"
	"repro/internal/resource"
	"repro/internal/server"
)

// The query-selftest probes: a standing /v1/watch subscription must see
// verdict flips caused by a reservation landing, a release, a leased
// hold arriving, and a lease expiring — each within one ledger epoch —
// and one-shot GET/POST verdicts must agree. The cluster selftest adds
// the fan-out equivalence check (a spanning query's verdict equals a
// single merged-ledger evaluation) and a flip driven by a coordinated
// admission submitted through a different node.

// watcher is a minimal SSE client for /v1/watch: events are pumped into
// a channel so probes can wait for the next one with a deadline.
type watcher struct {
	resp   *http.Response
	events chan query.Event
	errc   chan error
}

// openWatch subscribes to a standing query on the daemon. The stream
// uses its own timeout-free client: an http.Client deadline would cover
// the whole stream, not each event.
func openWatch(baseURL, q string) (*watcher, error) {
	req, err := http.NewRequest(http.MethodGet, baseURL+"/v1/watch?q="+neturl.QueryEscape(q), nil)
	if err != nil {
		return nil, err
	}
	resp, err := http.DefaultTransport.RoundTrip(req)
	if err != nil {
		return nil, err
	}
	if resp.StatusCode != http.StatusOK {
		data, _ := io.ReadAll(io.LimitReader(resp.Body, 4096))
		resp.Body.Close()
		return nil, fmt.Errorf("watch %q returned %d: %s", q, resp.StatusCode, strings.TrimSpace(string(data)))
	}
	w := &watcher{resp: resp, events: make(chan query.Event, 16), errc: make(chan error, 1)}
	go func() {
		defer close(w.events)
		sc := bufio.NewScanner(resp.Body)
		sc.Buffer(make([]byte, 0, 64*1024), 1<<20)
		for sc.Scan() {
			line := sc.Text()
			if !strings.HasPrefix(line, "data: ") {
				continue
			}
			var ev query.Event
			if err := json.Unmarshal([]byte(strings.TrimPrefix(line, "data: ")), &ev); err != nil {
				w.errc <- fmt.Errorf("watch %q sent unparsable event %q: %w", q, line, err)
				return
			}
			w.events <- ev
		}
	}()
	return w, nil
}

// next waits for the next verdict event.
func (w *watcher) next(timeout time.Duration) (query.Event, error) {
	select {
	case ev, ok := <-w.events:
		if !ok {
			select {
			case err := <-w.errc:
				return query.Event{}, err
			default:
				return query.Event{}, fmt.Errorf("watch stream closed")
			}
		}
		return ev, nil
	case err := <-w.errc:
		return query.Event{}, err
	case <-time.After(timeout):
		return query.Event{}, fmt.Errorf("no verdict event within %v", timeout)
	}
}

func (w *watcher) close() { w.resp.Body.Close() }

// expectFlip waits for the next event and asserts its verdict and the
// epoch-bump reason(s) that may legitimately have caused it. Multiple
// reasons cover coalescing: a sweep triggered by one bump can observe
// ledger state that a later bump already changed.
func (w *watcher) expectFlip(holds bool, reasons ...string) error {
	ev, err := w.next(5 * time.Second)
	if err != nil {
		return err
	}
	ok := false
	for _, r := range reasons {
		ok = ok || ev.Reason == r
	}
	if ev.Holds != holds || !ok {
		return fmt.Errorf("got flip (holds=%v, reason=%q), want (holds=%v, reason in %q)",
			ev.Holds, ev.Reason, holds, reasons)
	}
	return nil
}

// getQueryVerdict evaluates a one-shot query over GET.
func getQueryVerdict(ctx context.Context, client *http.Client, baseURL, q string) (server.QueryResponse, error) {
	req, err := http.NewRequestWithContext(ctx, http.MethodGet, baseURL+"/v1/query?q="+neturl.QueryEscape(q), nil)
	if err != nil {
		return server.QueryResponse{}, err
	}
	resp, err := client.Do(req)
	if err != nil {
		return server.QueryResponse{}, err
	}
	defer resp.Body.Close()
	data, err := io.ReadAll(io.LimitReader(resp.Body, 1<<20))
	if err != nil {
		return server.QueryResponse{}, err
	}
	if resp.StatusCode != http.StatusOK {
		return server.QueryResponse{}, fmt.Errorf("query %q returned %d: %s", q, resp.StatusCode, strings.TrimSpace(string(data)))
	}
	var out server.QueryResponse
	if err := json.Unmarshal(data, &out); err != nil {
		return server.QueryResponse{}, fmt.Errorf("query %q returned unparsable body: %w", q, err)
	}
	return out, nil
}

// runQueryProbe drives the single-node query-selftest sequence against a
// live daemon: one-shot GET/POST agreement, a watch flipped by an
// admission landing and its release, and a watch flipped by a leased
// hold and its expiry sweep.
func runQueryProbe(ctx context.Context, httpc *http.Client, baseURL string, loc resource.Location, horizon interval.Time) error {
	// One-shot: the GET text form and the POST wire form must agree.
	q := fmt.Sprintf("holds(%s, cpu>=1, next 10)", loc)
	getResp, err := getQueryVerdict(ctx, httpc, baseURL, q)
	if err != nil {
		return err
	}
	status, data, err := postJSON(ctx, httpc, baseURL+"/v1/query", server.QueryRequest{Query: q})
	if err != nil || status != http.StatusOK {
		return fmt.Errorf("POST query: status %d, err %v", status, err)
	}
	var postResp server.QueryResponse
	if err := json.Unmarshal(data, &postResp); err != nil {
		return fmt.Errorf("POST query body unparsable: %w", err)
	}
	if getResp.Holds != postResp.Holds || getResp.Query != postResp.Query {
		return fmt.Errorf("GET and POST verdicts disagree: %+v vs %+v", getResp, postResp)
	}

	// Flip by reservation: a standing feasibility query over a job that
	// does not exist yet flips when its admission lands, and back when
	// it is released.
	const jobName = "probe-query"
	w, err := openWatch(baseURL, fmt.Sprintf("feasible(%s)", jobName))
	if err != nil {
		return err
	}
	defer w.close()
	ev, err := w.next(5 * time.Second)
	if err != nil {
		return fmt.Errorf("initial verdict: %w", err)
	}
	if ev.Holds || ev.Reason != "subscribe" {
		return fmt.Errorf("initial verdict should be (false, subscribe), got (%v, %q)", ev.Holds, ev.Reason)
	}
	job, err := pinnedJob(jobName, loc, 0, horizon)
	if err != nil {
		return err
	}
	if status, data, err := postJSON(ctx, httpc, baseURL+"/v1/admit", job); err != nil || status != http.StatusOK {
		return fmt.Errorf("probe admit: status %d, err %v, body %s", status, err, strings.TrimSpace(string(data)))
	}
	if err := w.expectFlip(true, "reserve"); err != nil {
		return fmt.Errorf("reservation flip: %w", err)
	}
	if status, _, err := postJSON(ctx, httpc, baseURL+"/v1/release", map[string]string{"name": jobName}); err != nil || status != http.StatusOK {
		return fmt.Errorf("probe release: status %d, err %v", status, err)
	}
	if err := w.expectFlip(false, "release"); err != nil {
		return fmt.Errorf("release flip: %w", err)
	}

	// Flip by lease expiry: fresh capacity at a probe-only location, a
	// standing availability query over it, a leased hold that consumes
	// it, and the advance whose sweep gives it back.
	const probeLoc = "lq-probe"
	var extra resource.Set
	extra.Add(resource.NewTerm(resource.FromUnits(4), resource.CPUAt(probeLoc), interval.New(0, horizon)))
	if status, _, err := postJSON(ctx, httpc, baseURL+"/v1/acquire", map[string]string{"theta": extra.Compact()}); err != nil || status != http.StatusOK {
		return fmt.Errorf("probe acquire: status %d, err %v", status, err)
	}
	lw, err := openWatch(baseURL, fmt.Sprintf("holds(%s, cpu>=4, always, next 20)", probeLoc))
	if err != nil {
		return err
	}
	defer lw.close()
	if ev, err := lw.next(5 * time.Second); err != nil || !ev.Holds {
		return fmt.Errorf("lease probe initial verdict: holds=%v err=%v", ev.Holds, err)
	}
	hold := server.PrepareRequest{
		Key:    "probe-lease-key",
		Name:   "probe-lease",
		Demand: extra.Compact(),
		Finish: horizon, Deadline: horizon, Expiry: 20,
	}
	if status, data, err := postJSON(ctx, httpc, baseURL+"/v1/cluster/prepare", hold); err != nil || status != http.StatusOK {
		return fmt.Errorf("probe prepare: status %d, err %v, body %s", status, err, strings.TrimSpace(string(data)))
	}
	if err := lw.expectFlip(false, "prepare"); err != nil {
		return fmt.Errorf("hold flip: %w", err)
	}
	// Advance past the lease expiry: the sweep reclaims the hold and the
	// verdict flips back in the same epoch bump as the advance.
	if status, _, err := postJSON(ctx, httpc, baseURL+"/v1/advance", map[string]any{"now": 30}); err != nil || status != http.StatusOK {
		return fmt.Errorf("probe advance: status %d, err %v", status, err)
	}
	if err := lw.expectFlip(true, "advance"); err != nil {
		return fmt.Errorf("lease-expiry flip: %w", err)
	}
	return nil
}

// runClusterQueryProbe drives the cluster query-selftest: fan-out
// equivalence against a hand-merged free view, and a watch on one node
// flipped by a coordinated admission submitted through another.
func runClusterQueryProbe(ctx context.Context, httpc *http.Client, peers []peerProbe, start, horizon interval.Time) error {
	if len(peers) < 2 {
		return fmt.Errorf("cluster query probe needs 2 peers, got %d", len(peers))
	}
	a, b := peers[0], peers[1]
	q := fmt.Sprintf("holds(%s, cpu>=1, next 20) and holds(%s, cpu>=1, next 20)", a.loc, b.loc)

	// Fan-out verdict from node a (whose ledger does not own b.loc).
	fanout, err := getQueryVerdict(ctx, httpc, a.url, q)
	if err != nil {
		return fmt.Errorf("fan-out query: %w", err)
	}

	// The same verdict, computed here from the owners' free views — the
	// single merged-ledger evaluation the fan-out must equal.
	c, err := query.ParseText(q)
	if err != nil {
		return err
	}
	var free resource.Set
	var now interval.Time
	for _, p := range []peerProbe{a, b} {
		resp, err := httpc.Get(p.url + "/v1/cluster/free?locs=" + string(p.loc))
		if err != nil {
			return fmt.Errorf("free view from %s: %w", p.url, err)
		}
		var fr server.FreeResponse
		err = json.NewDecoder(resp.Body).Decode(&fr)
		resp.Body.Close()
		if err != nil {
			return fmt.Errorf("free view from %s unparsable: %w", p.url, err)
		}
		set, err := resource.ParseSet(fr.Free)
		if err != nil {
			return err
		}
		free = free.Union(set)
		if fr.Now > now {
			now = fr.Now
		}
	}
	merged, err := c.Evaluate(query.Snapshot{Now: now, Free: free, Commitments: map[string]query.Commitment{}})
	if err != nil {
		return err
	}
	if fanout.Holds != merged.Holds {
		return fmt.Errorf("fan-out verdict %v != merged-ledger verdict %v for %q", fanout.Holds, merged.Holds, q)
	}

	// A watch on node a flipped by a spanning admission submitted via the
	// LAST node: the coordination prepares and commits on a's ledger, and
	// a's standing query must see the flip.
	const jobName = "probe-cluster-query"
	w, err := openWatch(a.url, fmt.Sprintf("feasible(%s)", jobName))
	if err != nil {
		return err
	}
	defer w.close()
	if ev, err := w.next(5 * time.Second); err != nil || ev.Holds {
		return fmt.Errorf("cluster watch initial verdict: holds=%v err=%v", ev.Holds, err)
	}
	job, err := spanningJob(jobName, a.loc, b.loc, start, horizon)
	if err != nil {
		return err
	}
	coord := peers[len(peers)-1]
	status, data, err := postJSON(ctx, httpc, coord.url+"/v1/admit", job)
	if err != nil || status != http.StatusOK {
		return fmt.Errorf("spanning admit via %s: status %d, err %v, body %s", coord.url, status, err, strings.TrimSpace(string(data)))
	}
	var verdict server.AdmitResponse
	if jerr := json.Unmarshal(data, &verdict); jerr != nil || !verdict.Admit {
		return fmt.Errorf("spanning admit rejected: %s", strings.TrimSpace(string(data)))
	}
	// The hold lands ("prepare") and then commits ("commit"); feasible()
	// resolves the name once the commitment exists, so the flip arrives
	// with the commit's epoch bump — or with a gossip-triggered
	// re-evaluation if a peer's ledger-epoch broadcast lands first.
	if err := w.expectFlip(true, "prepare", "commit", "gossip"); err != nil {
		return fmt.Errorf("cross-node commit flip: %w", err)
	}
	if status, _, err := postJSON(ctx, httpc, coord.url+"/v1/release", map[string]string{"name": jobName}); err != nil || status != http.StatusOK {
		return fmt.Errorf("releasing %s: status %d, err %v", jobName, status, err)
	}
	if err := w.expectFlip(false, "release", "gossip"); err != nil {
		return fmt.Errorf("cross-node release flip: %w", err)
	}
	return nil
}

// peerProbe is one node's URL plus a location it owns.
type peerProbe struct {
	url string
	loc resource.Location
}
