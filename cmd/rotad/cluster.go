package main

import (
	"bytes"
	"context"
	"encoding/json"
	"errors"
	"fmt"
	"io"
	"net"
	"net/http"
	"sort"
	"strings"
	"time"

	"repro/internal/cluster"
	"repro/internal/compute"
	"repro/internal/cost"
	"repro/internal/interval"
	"repro/internal/metrics"
	"repro/internal/obs"
	"repro/internal/obs/assure"
	"repro/internal/obs/flightrec"
	"repro/internal/obs/span"
	"repro/internal/resource"
	"repro/internal/server"
	"repro/internal/workload"
)

// clusterSelftestConfig parameterizes the -selftest -cluster N mode: an
// N-node loopback federation hammered through the real HTTP stack, with
// a deterministic coordinator-crash probe and a migration probe around
// the main load.
type clusterSelftestConfig struct {
	nodes      int
	locs       []resource.Location
	server     server.Config
	leaseTTL   interval.Time
	requests   int
	clients    int
	seed       int64
	slack      float64
	horizon    interval.Time
	csv        bool
	spanCap    int
	assureOn   bool
	flightSize int
}

// nodeServerConfig specializes the shared server config for one member:
// its own promise ledger and flight recorder (both strictly node-local).
func (cfg clusterSelftestConfig) nodeServerConfig(id string, spans *span.Store) server.Config {
	scfg := cfg.server
	if cfg.assureOn {
		scfg.Assure = assure.New(id)
	}
	if cfg.flightSize > 0 {
		scfg.FlightRec = flightrec.New(id, cfg.flightSize, flightrec.DefaultSnapshotCap, spans)
	}
	return scfg
}

// runClusterSelftest boots the loopback cluster, injects a coordinator
// crash between prepare and commit of a cross-node job, drives the main
// load at every node, advances every ledger past the lease TTL, and then
// verifies the Theorem-4 invariant: every surviving node's audit passes
// and no lease outlives its TTL past the advance.
func runClusterSelftest(out io.Writer, cfg clusterSelftestConfig) error {
	if len(cfg.locs) < cfg.nodes {
		return fmt.Errorf("cluster selftest: %d nodes need at least %d locations (raise -locations)", cfg.nodes, cfg.nodes)
	}
	if cfg.leaseTTL <= 0 {
		cfg.leaseTTL = 50
	}

	// Listeners first, so every peer URL is known before any node starts.
	listeners := make([]net.Listener, cfg.nodes)
	peers := make([]cluster.Peer, cfg.nodes)
	parts := cluster.PartitionLocations(cfg.locs, cfg.nodes)
	for i := range listeners {
		ln, err := net.Listen("tcp", "127.0.0.1:0")
		if err != nil {
			return err
		}
		listeners[i] = ln
		peers[i] = cluster.Peer{
			ID:        fmt.Sprintf("n%d", i+1),
			URL:       "http://" + ln.Addr().String(),
			Locations: parts[i],
		}
	}

	// Each node gets its own event-log sink so the trace probe below can
	// assert one trace ID shows up on every node a federated admission
	// touches. The buffers are only read while no traffic is in flight.
	nodes := make([]*cluster.Node, cfg.nodes)
	httpSrvs := make([]*http.Server, cfg.nodes)
	logs := make([]*bytes.Buffer, cfg.nodes)
	spanStores := make([]*span.Store, cfg.nodes)
	for i := range nodes {
		logs[i] = &bytes.Buffer{}
		if cfg.spanCap > 0 {
			spanStores[i] = span.NewStore(cfg.spanCap, peers[i].ID)
		}
		nd, err := cluster.New(cluster.Config{
			Self:           peers[i].ID,
			Peers:          peers,
			Server:         cfg.nodeServerConfig(peers[i].ID, spanStores[i]),
			LeaseTTL:       cfg.leaseTTL,
			GossipInterval: 100 * time.Millisecond,
			Obs:            obs.New(obs.Options{Log: logs[i], Node: peers[i].ID}),
			Spans:          spanStores[i],
		})
		if err != nil {
			return err
		}
		nodes[i] = nd
		httpSrvs[i] = &http.Server{Handler: nd}
		go func(i int) { _ = httpSrvs[i].Serve(listeners[i]) }(i)
	}
	defer func() {
		ctx, cancel := context.WithTimeout(context.Background(), 5*time.Second)
		defer cancel()
		for i := range nodes {
			_ = nodes[i].Shutdown(ctx)
			_ = httpSrvs[i].Shutdown(ctx)
		}
	}()

	httpc := &http.Client{Timeout: 10 * time.Second}
	ctx := context.Background()

	// Probe 1: coordinator crash. A job spanning n1's and n2's locations
	// forces two-phase coordination on n1; the armed crash stops the
	// coordinator dead after its prepares succeed, leaving leased holds
	// on both participants for the expiry sweep to reclaim.
	crashJob, err := spanningJob("probe-crash", parts[0][0], parts[1][0], 0, cfg.horizon)
	if err != nil {
		return err
	}
	nodes[0].InjectCrashBeforeCommit()
	status, _, err := postJSON(ctx, httpc, peers[0].URL+"/v1/admit", crashJob)
	if err != nil {
		return fmt.Errorf("cluster selftest: crash probe: %w", err)
	}
	if status != http.StatusInternalServerError {
		return fmt.Errorf("cluster selftest: crash probe returned %d, want 500 (injected crash)", status)
	}
	if got := nodes[0].Stats().Cluster.InjectedCrashes; got != 1 {
		return fmt.Errorf("cluster selftest: crash probe left %d injected crashes, want 1", got)
	}
	orphaned := nodes[0].Server().Ledger().NumHolds() + nodes[1].Server().Ledger().NumHolds()
	if orphaned < 2 {
		return fmt.Errorf("cluster selftest: crash probe left %d orphaned holds, want >= 2", orphaned)
	}

	// Probe 2: trace correlation. A job spanning n1 and n2, submitted to
	// the LAST node with an explicit trace ID, exercises the full
	// federation path: coordination there, prepares and commits over HTTP
	// on both owners. The one trace ID must appear in the event log of
	// every node it touched.
	const probeTrace = "selftest-trace-0001"
	coordIdx := cfg.nodes - 1
	traceJob, err := spanningJob("probe-trace", parts[0][0], parts[1][0], 0, cfg.horizon)
	if err != nil {
		return err
	}
	status, data, err := postJSONTrace(ctx, httpc, peers[coordIdx].URL+"/v1/admit", probeTrace, traceJob)
	if err != nil {
		return fmt.Errorf("cluster selftest: trace probe: %w", err)
	}
	var traceVerdict server.AdmitResponse
	if jerr := json.Unmarshal(data, &traceVerdict); status != http.StatusOK || jerr != nil || !traceVerdict.Admit {
		return fmt.Errorf("cluster selftest: trace probe not admitted (status %d, body %s)", status, bytes.TrimSpace(data))
	}
	for _, i := range []int{0, 1, coordIdx} {
		if !strings.Contains(logs[i].String(), "trace="+probeTrace) {
			return fmt.Errorf("cluster selftest: node %s never logged trace %s (log:\n%s)",
				peers[i].ID, probeTrace, logs[i].String())
		}
	}
	if status, _, err := postJSON(ctx, httpc, peers[coordIdx].URL+"/v1/release", map[string]string{"name": "probe-trace"}); err != nil || status != http.StatusOK {
		return fmt.Errorf("cluster selftest: releasing trace probe: status %d, err %v", status, err)
	}

	// Probe 2b: span reconstruction. The trace probe's spans, pulled from
	// every node's dump endpoint and merged, must form ONE connected tree
	// — coordinator spans on the coordinating node, RPC attempts beneath
	// them, participant prepares/commits parented across the wire. The
	// terminal spans may still be closing when the verdict arrives, so
	// poll briefly before declaring the tree broken.
	if cfg.spanCap > 0 {
		var tree *span.Tree
		for deadline := time.Now().Add(2 * time.Second); ; {
			var recs []span.Record
			for _, p := range peers {
				dump, err := fetchSpanDump(ctx, httpc, p.URL, probeTrace)
				if err != nil {
					return fmt.Errorf("cluster selftest: span dump from %s: %w", p.ID, err)
				}
				recs = append(recs, dump...)
			}
			tree = span.BuildTree(probeTrace, recs)
			if tree.Connected() && tree.Spans >= 5 {
				break
			}
			if time.Now().After(deadline) {
				var buf bytes.Buffer
				tree.WriteTree(&buf)
				return fmt.Errorf("cluster selftest: trace probe spans never formed a connected tree (%d roots, %d orphans):\n%s",
					len(tree.Roots), tree.Orphans, buf.String())
			}
			time.Sleep(20 * time.Millisecond)
		}
		fmt.Fprintln(out)
		cp := metrics.NewTable(fmt.Sprintf("trace %s critical path (%d spans, connected)", probeTrace, tree.Spans),
			"kind", "node", "total µs", "self µs")
		for _, n := range tree.CriticalPath() {
			cp.AddRow(n.Kind, n.Node, n.DurationUS, n.SelfUS())
		}
		cp.Render(out)
		fmt.Fprintln(out)
		phases := tree.PhaseBreakdown()
		kinds := make([]string, 0, len(phases))
		for k := range phases {
			kinds = append(kinds, k)
		}
		sort.Strings(kinds)
		pb := metrics.NewTable("per-phase latency breakdown", "phase", "total µs")
		for _, k := range kinds {
			pb.AddRow(k, phases[k])
		}
		pb.Render(out)
		fmt.Fprintln(out)
	}

	// Main load: mixed single- and multi-location jobs at every node.
	jobs, err := workload.Generate(workload.Config{
		Seed:             cfg.seed,
		Locations:        cfg.locs,
		NumJobs:          cfg.requests,
		MeanInterarrival: float64(cfg.horizon) / float64(cfg.requests+1) / 4,
		ActorsMin:        1,
		ActorsMax:        3,
		StepsMin:         1,
		StepsMax:         4,
		SendProb:         0.2,
		MigrateProb:      0.05,
		EvalWeightMax:    3,
		SlackFactor:      cfg.slack,
	})
	if err != nil {
		return err
	}
	urls := make([]string, len(peers))
	for i, p := range peers {
		urls[i] = p.URL
	}
	report, err := server.RunLoad(ctx, server.LoadConfig{
		BaseURLs:        urls,
		Jobs:            jobs,
		Requests:        cfg.requests,
		Clients:         cfg.clients,
		ReleaseAdmitted: true,
	})
	if err != nil {
		return err
	}

	// Every node's invariant must hold while the orphaned leases are
	// still live (they are accounted reservations until they expire).
	for i, nd := range nodes {
		if err := nd.Server().Ledger().Audit(); err != nil {
			return fmt.Errorf("cluster selftest: node %s audit before sweep: %w", peers[i].ID, err)
		}
	}

	// Advance every ledger past the TTL through the fan-out endpoint:
	// the sweep must reclaim the crash probe's holds on every node.
	sweepAt := cfg.leaseTTL * 2
	status, _, err = postJSON(ctx, httpc, peers[0].URL+"/v1/cluster/advance", map[string]any{"now": sweepAt})
	if err != nil {
		return fmt.Errorf("cluster selftest: advance: %w", err)
	}
	if status != http.StatusOK {
		return fmt.Errorf("cluster selftest: advance returned %d", status)
	}
	for i, nd := range nodes {
		if holds := nd.Server().Ledger().NumHolds(); holds != 0 {
			return fmt.Errorf("cluster selftest: node %s still has %d holds after sweep at t=%d", peers[i].ID, holds, sweepAt)
		}
		if err := nd.Server().Ledger().Audit(); err != nil {
			return fmt.Errorf("cluster selftest: node %s audit after sweep: %w", peers[i].ID, err)
		}
	}

	// Probe 3: migration. Admit a job owned wholly by n2 (forwarded from
	// n1), re-home it to the next node via the migrate rule, release it
	// cluster-wide.
	migrateJob, err := pinnedJob("probe-migrate", parts[1][0], sweepAt, cfg.horizon)
	if err != nil {
		return err
	}
	status, data, err = postJSON(ctx, httpc, peers[0].URL+"/v1/admit", migrateJob)
	if err != nil {
		return fmt.Errorf("cluster selftest: migrate probe admit: %w", err)
	}
	var verdict server.AdmitResponse
	if jerr := json.Unmarshal(data, &verdict); status != http.StatusOK || jerr != nil || !verdict.Admit {
		return fmt.Errorf("cluster selftest: migrate probe not admitted (status %d, body %s)", status, bytes.TrimSpace(data))
	}
	target := peers[2%cfg.nodes].ID
	status, data, err = postJSON(ctx, httpc, peers[1].URL+"/v1/cluster/migrate",
		cluster.MigrateRequest{Name: "probe-migrate", Target: target})
	if err != nil {
		return fmt.Errorf("cluster selftest: migrate probe: %w", err)
	}
	if status != http.StatusOK {
		return fmt.Errorf("cluster selftest: migrate to %s returned %d: %s", target, status, bytes.TrimSpace(data))
	}
	status, data, err = postJSON(ctx, httpc, peers[0].URL+"/v1/release", map[string]string{"name": "probe-migrate"})
	if err != nil || status != http.StatusOK {
		return fmt.Errorf("cluster selftest: releasing migrated job: status %d, err %v, body %s", status, err, bytes.TrimSpace(data))
	}

	// Probe 4: the query layer across nodes. A spanning query's fan-out
	// verdict must equal a single merged-ledger evaluation, and a watch
	// on one node must flip when a coordinated admission submitted via
	// another node commits on its ledger.
	probePeers := make([]peerProbe, len(peers))
	for i := range peers {
		probePeers[i] = peerProbe{url: peers[i].URL, loc: parts[i][0]}
	}
	if err := runClusterQueryProbe(ctx, httpc, probePeers, sweepAt, cfg.horizon); err != nil {
		return fmt.Errorf("cluster selftest: query probe: %w", err)
	}
	fmt.Fprintln(out, "cluster query probe ok")

	// Probe 5: dynamic membership under load. A brand-new node joins the
	// live cluster and is pinned one of the last node's locations while
	// background load keeps hammering the OLD owner URLs. Acceptance:
	// zero lost committed reservations and zero admission errors —
	// ownership-moved redirects are followed, never failed.
	memLoc := parts[cfg.nodes-1][0]
	joinerID := fmt.Sprintf("n%d", cfg.nodes+1)
	const memberSeeds = 4
	for i := 0; i < memberSeeds; i++ {
		name := fmt.Sprintf("probe-member-%d", i)
		seedJob, err := pinnedJob(name, memLoc, sweepAt, cfg.horizon)
		if err != nil {
			return err
		}
		status, data, err := postJSON(ctx, httpc, peers[0].URL+"/v1/admit", seedJob)
		var v server.AdmitResponse
		if jerr := json.Unmarshal(data, &v); err != nil || status != http.StatusOK || jerr != nil || !v.Admit {
			return fmt.Errorf("cluster selftest: membership seed %s not admitted (status %d, err %v, body %s)",
				name, status, err, bytes.TrimSpace(data))
		}
	}
	bgJobs, err := workload.Generate(workload.Config{
		Seed:             cfg.seed + 1,
		Locations:        cfg.locs,
		NumJobs:          200,
		MeanInterarrival: float64(cfg.horizon) / 800,
		ActorsMin:        1,
		ActorsMax:        2,
		StepsMin:         1,
		StepsMax:         3,
		SendProb:         0.2,
		EvalWeightMax:    2,
		SlackFactor:      cfg.slack,
	})
	if err != nil {
		return err
	}
	for i := range bgJobs {
		bgJobs[i].Dist.Name = "member-bg-" + bgJobs[i].Dist.Name
	}
	type bgResult struct {
		report server.LoadReport
		err    error
	}
	bgDone := make(chan bgResult, 1)
	go func() {
		r, err := server.RunLoad(ctx, server.LoadConfig{
			BaseURLs:        urls,
			Jobs:            bgJobs,
			Requests:        len(bgJobs),
			Clients:         4,
			ReleaseAdmitted: true,
		})
		bgDone <- bgResult{r, err}
	}()

	jln, err := net.Listen("tcp", "127.0.0.1:0")
	if err != nil {
		return err
	}
	var joinerSpans *span.Store
	if cfg.spanCap > 0 {
		joinerSpans = span.NewStore(cfg.spanCap, joinerID)
	}
	joiner, err := cluster.New(cluster.Config{
		Self:           joinerID,
		Peers:          []cluster.Peer{{ID: joinerID, URL: "http://" + jln.Addr().String()}},
		Join:           true,
		Server:         cfg.nodeServerConfig(joinerID, joinerSpans),
		LeaseTTL:       cfg.leaseTTL,
		GossipInterval: 100 * time.Millisecond,
		Obs:            obs.New(obs.Options{Log: &bytes.Buffer{}, Node: joinerID}),
		Spans:          joinerSpans,
	})
	if err != nil {
		return fmt.Errorf("cluster selftest: joiner: %w", err)
	}
	joinerHTTP := &http.Server{Handler: joiner}
	go func() { _ = joinerHTTP.Serve(jln) }()
	defer func() {
		ctx, cancel := context.WithTimeout(context.Background(), 5*time.Second)
		defer cancel()
		_ = joiner.Shutdown(ctx)
		_ = joinerHTTP.Shutdown(ctx)
	}()
	joinCtx, cancelJoin := context.WithTimeout(ctx, 30*time.Second)
	err = joiner.JoinCluster(joinCtx, peers[0].URL, []resource.Location{memLoc})
	cancelJoin()
	if err != nil {
		return fmt.Errorf("cluster selftest: join: %w", err)
	}
	for deadline := time.Now().Add(5 * time.Second); ; {
		settled := true
		for _, nd := range nodes {
			if owner, _ := nd.Table().OwnerOf(memLoc); owner != joinerID {
				settled = false
			}
		}
		if settled {
			break
		}
		if time.Now().After(deadline) {
			return fmt.Errorf("cluster selftest: ownership of %s never converged on %s", memLoc, joinerID)
		}
		time.Sleep(20 * time.Millisecond)
	}
	bg := <-bgDone
	if bg.err != nil {
		return fmt.Errorf("cluster selftest: background load during join: %w", bg.err)
	}
	if bg.report.Errors > 0 || bg.report.ReleaseErrors > 0 {
		return fmt.Errorf("cluster selftest: %d background requests and %d releases errored during join (redirects must be followed, not failed); first: %s",
			bg.report.Errors, bg.report.ReleaseErrors, bg.report.FirstError)
	}
	everyone := append(append([]*cluster.Node{}, nodes...), joiner)
	for i := 0; i < memberSeeds; i++ {
		name := fmt.Sprintf("probe-member-%d", i)
		if homes := ledgerHomes(everyone, name); homes != 1 {
			return fmt.Errorf("cluster selftest: %s lives on %d ledgers after the join, want exactly 1", name, homes)
		}
		if _, ok := joiner.Server().Ledger().Commitment(name); !ok {
			return fmt.Errorf("cluster selftest: %s did not move to the joiner with its location", name)
		}
	}
	for i, nd := range everyone {
		if err := nd.Server().Ledger().Audit(); err != nil {
			return fmt.Errorf("cluster selftest: audit after join (node %d): %w", i, err)
		}
	}
	fmt.Fprintf(out, "membership join probe ok (%d redirects followed, 0 lost reservations)\n", bg.report.Redirects)

	// Probe 6: shard-primary failover mid-2PC. Arm a coordinator crash
	// so a leased hold sits prepared-but-uncommitted on the joiner, wait
	// for gossip to ship the shadow, kill the joiner's listener, and
	// force-leave it. The standby must promote with every committed
	// reservation, the lease sweep must reclaim the orphaned hold, and a
	// fresh admission must land on the new primary.
	standbyID := joiner.Table().StandbyOf(memLoc)
	var standby *cluster.Node
	for i := range peers {
		if peers[i].ID == standbyID {
			standby = nodes[i]
		}
	}
	if standby == nil {
		return fmt.Errorf("cluster selftest: standby %q of %s is not a live peer", standbyID, memLoc)
	}
	// The joiner may have won the rendezvous hash for locations beyond
	// its pin, so pick the cross-node half of the 2PC from whatever an
	// original node still owns — that node receives the admit and
	// coordinates (its part local, the joiner's under a leased hold).
	coordIdx, otherLoc := -1, resource.Location("")
	for i := range peers {
		if locs := joiner.Table().Locations(peers[i].ID); len(locs) > 0 {
			coordIdx, otherLoc = i, locs[0]
			break
		}
	}
	if coordIdx < 0 {
		return fmt.Errorf("cluster selftest: the joiner owns every location; no original node left to coordinate a cross-node 2PC")
	}
	failJob, err := spanningJob("probe-failover-2pc", memLoc, otherLoc, sweepAt, cfg.horizon)
	if err != nil {
		return err
	}
	nodes[coordIdx].InjectCrashBeforeCommit()
	status, _, err = postJSON(ctx, httpc, peers[coordIdx].URL+"/v1/admit", failJob)
	if err != nil {
		return fmt.Errorf("cluster selftest: failover 2PC probe: %w", err)
	}
	if status != http.StatusInternalServerError {
		return fmt.Errorf("cluster selftest: failover 2PC probe returned %d, want 500 (injected crash)", status)
	}
	if holds := joiner.Server().Ledger().NumHolds(); holds < 1 {
		return fmt.Errorf("cluster selftest: joiner holds %d leases mid-2PC, want >= 1", holds)
	}
	for deadline := time.Now().Add(5 * time.Second); ; {
		cms, holds, ok := standby.ShadowFor(memLoc)
		if ok && cms >= memberSeeds && holds >= 1 {
			break
		}
		if time.Now().After(deadline) {
			return fmt.Errorf("cluster selftest: standby %s shadow never caught up (cms=%d holds=%d ok=%v)",
				standbyID, cms, holds, ok)
		}
		time.Sleep(20 * time.Millisecond)
	}

	failoverStart := time.Now()
	joinerHTTP.Close() // hard stop: the primary is gone mid-protocol
	status, data, err = postJSON(ctx, httpc, peers[0].URL+"/v1/cluster/leave",
		map[string]any{"id": joinerID, "force": true})
	if err != nil || status != http.StatusOK {
		return fmt.Errorf("cluster selftest: force leave: status %d, err %v, body %s", status, err, bytes.TrimSpace(data))
	}
	var failoverAdmitMS float64
	for attempt := 0; ; attempt++ {
		probe, err := pinnedJob(fmt.Sprintf("probe-failover-admit-%d", attempt), memLoc, sweepAt, cfg.horizon)
		if err != nil {
			return err
		}
		status, data, err := postJSON(ctx, httpc, peers[0].URL+"/v1/admit", probe)
		var v server.AdmitResponse
		if err == nil && status == http.StatusOK && json.Unmarshal(data, &v) == nil && v.Admit {
			failoverAdmitMS = float64(time.Since(failoverStart).Microseconds()) / 1000
			break
		}
		if time.Since(failoverStart) > 10*time.Second {
			return fmt.Errorf("cluster selftest: no successful admit on %s within 10s of failover (last status %d, err %v)",
				memLoc, status, err)
		}
		time.Sleep(20 * time.Millisecond)
	}
	for _, nd := range nodes {
		if _, ok := nd.Table().Member(joinerID); ok {
			return fmt.Errorf("cluster selftest: dead primary %s still in the table", joinerID)
		}
		if owner, _ := nd.Table().OwnerOf(memLoc); owner != standbyID {
			return fmt.Errorf("cluster selftest: %s owned by %q after failover, want standby %s", memLoc, owner, standbyID)
		}
	}
	for i := 0; i < memberSeeds; i++ {
		name := fmt.Sprintf("probe-member-%d", i)
		if homes := ledgerHomes(nodes, name); homes != 1 {
			return fmt.Errorf("cluster selftest: %s lives on %d survivor ledgers after failover, want 1", name, homes)
		}
		if _, ok := standby.Server().Ledger().Commitment(name); !ok {
			return fmt.Errorf("cluster selftest: committed reservation %s lost in failover", name)
		}
	}
	if got := standby.Stats().Cluster.Promotions; got != 1 {
		return fmt.Errorf("cluster selftest: standby recorded %d promotions, want 1", got)
	}
	// Sweep the orphaned mid-2PC lease and re-audit every survivor: no
	// overcommitment, no leased hold outliving its TTL.
	failSweepAt := sweepAt + 2*cfg.leaseTTL
	status, _, err = postJSON(ctx, httpc, peers[0].URL+"/v1/cluster/advance", map[string]any{"now": failSweepAt})
	if err != nil || status != http.StatusOK {
		return fmt.Errorf("cluster selftest: advance after failover: status %d, err %v", status, err)
	}
	for i, nd := range nodes {
		if holds := nd.Server().Ledger().NumHolds(); holds != 0 {
			return fmt.Errorf("cluster selftest: node %s still has %d leased holds after the failover sweep", peers[i].ID, holds)
		}
		if err := nd.Server().Ledger().Audit(); err != nil {
			return fmt.Errorf("cluster selftest: node %s audit after failover: %w", peers[i].ID, err)
		}
	}
	fmt.Fprintf(out, "failover probe ok (first admit %.1f ms after kill)\n", failoverAdmitMS)

	// Probe 7: deadline-assurance continuity. Nothing in the whole run —
	// handoff, migration, failover — may have violated a promise, and the
	// seeds that rode the promotion must be accounted for on the new
	// primary (kept once complete, active until then), never orphaned.
	if cfg.assureOn {
		var aresp cluster.ClusterAssureResponse
		if err := getJSON(ctx, httpc, peers[0].URL+"/v1/assure", &aresp); err != nil {
			return fmt.Errorf("cluster selftest: assure fan-out: %w", err)
		}
		if aresp.Totals.Violated != 0 {
			return fmt.Errorf("cluster selftest: %d promises violated, want 0", aresp.Totals.Violated)
		}
		if aresp.Totals.Kept == 0 {
			return errors.New("cluster selftest: no kept promises recorded despite released admissions")
		}
		for i := 0; i < memberSeeds; i++ {
			name := fmt.Sprintf("probe-member-%d", i)
			var jresp cluster.ClusterAssureJobResponse
			if err := getJSON(ctx, httpc, peers[0].URL+"/v1/assure?job="+name, &jresp); err != nil {
				return fmt.Errorf("cluster selftest: assure lookup %s: %w", name, err)
			}
			if !jresp.Found {
				return fmt.Errorf("cluster selftest: no node accounts for %s's promise after failover", name)
			}
			if st := jresp.Promise.State; st == assure.StateOrphaned || st == assure.StateViolated {
				return fmt.Errorf("cluster selftest: %s's promise is %s after failover, want kept or active", name, st)
			}
		}
		fmt.Fprintf(out, "assure continuity probe ok (%d kept, %d transferred, attainment %.3f)\n",
			aresp.Totals.Kept, aresp.Totals.Transferred, aresp.Totals.Attainment)
	}

	// Report.
	t := metrics.NewTable(
		fmt.Sprintf("rotad cluster selftest: %d nodes, %d requests, %d clients", cfg.nodes, cfg.requests, cfg.clients),
		"metric", "value")
	t.AddRow("requests", report.Requests)
	t.AddRow("admitted", report.Admitted)
	t.AddRow("rejected", report.Rejected)
	t.AddRow("released", report.Released)
	t.AddRow("errors", report.Errors)
	t.AddRow("duration ms", float64(report.Duration.Microseconds())/1000)
	t.AddRow("throughput req/s", report.Throughput)
	t.AddRow("client p50 µs", report.P50US)
	t.AddRow("client p99 µs", report.P99US)
	var coords, coordAdmitted, forwarded, migrations uint64
	for i, nd := range nodes {
		st := nd.Stats()
		coords += st.Cluster.Coordinations
		coordAdmitted += st.Cluster.CoordAdmitted
		forwarded += st.Cluster.Forwarded
		migrations += st.Cluster.Migrations
		t.AddRow(fmt.Sprintf("%s decisions", peers[i].ID), st.Decisions)
		t.AddRow(fmt.Sprintf("%s shards", peers[i].ID), st.Shards)
	}
	var joins, handoffs, promotions, redirectsServed uint64
	for _, nd := range nodes {
		st := nd.Stats().Cluster
		joins += st.Joins
		handoffs += st.Handoffs
		promotions += st.Promotions
		redirectsServed += st.RedirectsServed
	}
	t.AddRow("coordinations", coords)
	t.AddRow("coordinated admits", coordAdmitted)
	t.AddRow("forwarded", forwarded)
	t.AddRow("migrations", migrations)
	t.AddRow("injected crashes", nodes[0].Stats().Cluster.InjectedCrashes)
	t.AddRow("orphaned holds swept", orphaned)
	t.AddRow("membership epoch", nodes[0].Table().Epoch)
	t.AddRow("joins stewarded", joins)
	t.AddRow("handoffs", handoffs)
	t.AddRow("promotions", promotions)
	t.AddRow("redirects served", redirectsServed)
	t.AddRow("join-load redirects followed", bg.report.Redirects)
	t.AddRow("failover to first admit ms", failoverAdmitMS)
	if cfg.csv {
		t.RenderCSV(out)
	} else {
		t.Render(out)
	}

	if report.Errors > 0 {
		return fmt.Errorf("cluster selftest: %d requests errored", report.Errors)
	}
	if report.Admitted == 0 {
		return errors.New("cluster selftest: nothing admitted; workload or availability misconfigured")
	}
	if migrations != 1 {
		return fmt.Errorf("cluster selftest: %d migrations recorded, want 1", migrations)
	}

	// Span acceptance: no rejection left the cluster without provenance,
	// and under the full load every span store stayed within its bound
	// (overflow shows up as evictions, never as growth).
	if cfg.spanCap > 0 {
		if report.UnexplainedRejects > 0 {
			return fmt.Errorf("cluster selftest: %d rejections carried no provenance", report.UnexplainedRejects)
		}
		for i, st := range spanStores {
			stats := st.Stats()
			if stats.Live > stats.Capacity {
				return fmt.Errorf("cluster selftest: node %s span store holds %d spans, bound %d",
					peers[i].ID, stats.Live, stats.Capacity)
			}
			for _, rec := range st.Snapshot() {
				if rec.Status == span.StatusReject && rec.Provenance == nil {
					return fmt.Errorf("cluster selftest: node %s recorded a %s reject span without provenance",
						peers[i].ID, rec.Kind)
				}
			}
		}
	}
	fmt.Fprintln(out, "cluster selftest ok")
	return nil
}

// fetchSpanDump pulls one node's span records for a trace from its
// /debug/rota/trace endpoint.
func fetchSpanDump(ctx context.Context, client *http.Client, baseURL, trace string) ([]span.Record, error) {
	req, err := http.NewRequestWithContext(ctx, http.MethodGet, baseURL+"/debug/rota/trace/"+trace, nil)
	if err != nil {
		return nil, err
	}
	resp, err := client.Do(req)
	if err != nil {
		return nil, err
	}
	defer resp.Body.Close()
	if resp.StatusCode != http.StatusOK {
		data, _ := io.ReadAll(io.LimitReader(resp.Body, 4096))
		return nil, fmt.Errorf("%s returned %d: %s", req.URL, resp.StatusCode, bytes.TrimSpace(data))
	}
	var dump span.Dump
	if err := json.NewDecoder(resp.Body).Decode(&dump); err != nil {
		return nil, fmt.Errorf("%s returned unparsable dump: %w", req.URL, err)
	}
	return dump.Spans, nil
}

// spanningJob builds a two-actor job whose footprint spans two locations
// (and thus, in the selftest partition, two owners), forcing two-phase
// coordination.
func spanningJob(name string, locA, locB resource.Location, start, deadline interval.Time) (workload.Job, error) {
	model := cost.Paper()
	c1, err := cost.Realize(model, "a1", compute.Evaluate("a1", locA, 1))
	if err != nil {
		return workload.Job{}, err
	}
	c2, err := cost.Realize(model, "a2", compute.Evaluate("a2", locB, 1))
	if err != nil {
		return workload.Job{}, err
	}
	dist, err := compute.NewDistributed(name, start, deadline, c1, c2)
	if err != nil {
		return workload.Job{}, err
	}
	return workload.Job{Dist: dist}, nil
}

// pinnedJob builds a single-actor job confined to one location.
func pinnedJob(name string, loc resource.Location, start, deadline interval.Time) (workload.Job, error) {
	c, err := cost.Realize(cost.Paper(), "a1", compute.Evaluate("a1", loc, 1))
	if err != nil {
		return workload.Job{}, err
	}
	dist, err := compute.NewDistributed(name, start, deadline, c)
	if err != nil {
		return workload.Job{}, err
	}
	return workload.Job{Dist: dist}, nil
}

// ledgerHomes counts how many of the given nodes' ledgers hold a
// commitment — exactly 1 for anything that survived a handoff intact.
func ledgerHomes(nodes []*cluster.Node, name string) int {
	homes := 0
	for _, nd := range nodes {
		if _, ok := nd.Server().Ledger().Commitment(name); ok {
			homes++
		}
	}
	return homes
}

// postJSON posts a JSON body and returns (status, body) without treating
// non-2xx as an error — the selftest asserts on exact statuses.
func postJSON(ctx context.Context, client *http.Client, url string, v any) (int, []byte, error) {
	return postJSONTrace(ctx, client, url, "", v)
}

// postJSONTrace is postJSON with an explicit trace ID on the request, so
// the selftest can follow one admission across the cluster's event logs.
func postJSONTrace(ctx context.Context, client *http.Client, url, trace string, v any) (int, []byte, error) {
	body, err := json.Marshal(v)
	if err != nil {
		return 0, nil, err
	}
	req, err := http.NewRequestWithContext(ctx, http.MethodPost, url, bytes.NewReader(body))
	if err != nil {
		return 0, nil, err
	}
	req.Header.Set("Content-Type", "application/json")
	if trace != "" {
		req.Header.Set(obs.HeaderTraceID, trace)
	}
	resp, err := client.Do(req)
	if err != nil {
		return 0, nil, err
	}
	defer resp.Body.Close()
	data, err := io.ReadAll(io.LimitReader(resp.Body, 1<<20))
	if err != nil {
		return resp.StatusCode, nil, err
	}
	return resp.StatusCode, data, nil
}
