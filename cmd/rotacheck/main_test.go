package main

import (
	"os"
	"path/filepath"
	"strings"
	"testing"
)

const demoScenario = `
resources 4:cpu@l1:(0,14),2:network@l1>l2:(2,6)
job j1 0 12
actor a1 l1
eval 1
send a2 l2 1
eval 1
job j2 0 12
actor b1 l1
eval 2
`

const starvedScenario = `
resources 1:cpu@l1:(0,4)
job hungry 0 4
actor a1 l1
eval 1
`

func writeTemp(t *testing.T, content string) string {
	t.Helper()
	path := filepath.Join(t.TempDir(), "scenario.rota")
	if err := os.WriteFile(path, []byte(content), 0o600); err != nil {
		t.Fatal(err)
	}
	return path
}

func TestRunAssuredScenario(t *testing.T) {
	path := writeTemp(t, demoScenario)
	var sb strings.Builder
	code, err := run([]string{path}, &sb)
	if err != nil {
		t.Fatal(err)
	}
	if code != 0 {
		t.Fatalf("exit code = %d\n%s", code, sb.String())
	}
	out := sb.String()
	if strings.Count(out, "ASSURED") != 2 {
		t.Errorf("want 2 ASSURED lines:\n%s", out)
	}
	if !strings.Contains(out, "breaks [2 4 6]") {
		t.Errorf("missing break points:\n%s", out)
	}
}

func TestRunRefusedScenarioExitCode(t *testing.T) {
	path := writeTemp(t, starvedScenario)
	var sb strings.Builder
	code, err := run([]string{path}, &sb)
	if err != nil {
		t.Fatal(err)
	}
	if code != 2 {
		t.Fatalf("exit code = %d, want 2", code)
	}
	if !strings.Contains(sb.String(), "REFUSED") {
		t.Errorf("missing REFUSED:\n%s", sb.String())
	}
}

func TestRunIndependentMode(t *testing.T) {
	// Two jobs that each fit alone but not together: cumulative mode
	// refuses the second, independent mode assures both.
	scenario := `
resources 2:cpu@l1:(0,4)
job j1 0 4
actor a1 l1
eval 1
job j2 0 4
actor b1 l1
eval 1
`
	path := writeTemp(t, scenario)
	var cumulative strings.Builder
	code, err := run([]string{path}, &cumulative)
	if err != nil {
		t.Fatal(err)
	}
	if code != 2 || !strings.Contains(cumulative.String(), "REFUSED") {
		t.Errorf("cumulative should refuse one job (code %d):\n%s", code, cumulative.String())
	}
	var indep strings.Builder
	code, err = run([]string{"-independent", path}, &indep)
	if err != nil {
		t.Fatal(err)
	}
	if code != 0 || strings.Count(indep.String(), "ASSURED") != 2 {
		t.Errorf("independent should assure both (code %d):\n%s", code, indep.String())
	}
}

func TestRunVerboseShowsAllocations(t *testing.T) {
	path := writeTemp(t, demoScenario)
	var sb strings.Builder
	if _, err := run([]string{"-v", path}, &sb); err != nil {
		t.Fatal(err)
	}
	if !strings.Contains(sb.String(), "alloc a1 phase 0") {
		t.Errorf("verbose output missing allocations:\n%s", sb.String())
	}
}

func TestRunFormulaFlag(t *testing.T) {
	path := writeTemp(t, demoScenario)
	var sb strings.Builder
	if _, err := run([]string{"-formula", "satisfy{1:cpu@l1}(0,14) & !satisfy{999:cpu@l1}(0,14)", path}, &sb); err != nil {
		t.Fatal(err)
	}
	if !strings.Contains(sb.String(), "= true") {
		t.Errorf("formula verdict missing:\n%s", sb.String())
	}
	// Job-name atoms resolve.
	var sb2 strings.Builder
	if _, err := run([]string{"-formula", "satisfy(j1)", path}, &sb2); err != nil {
		t.Fatal(err)
	}
	// j1 is already admitted, so its requirement no longer fits in what
	// remains free — either verdict is legitimate output; just require a
	// verdict line.
	if !strings.Contains(sb2.String(), "formula ") {
		t.Errorf("formula output missing:\n%s", sb2.String())
	}
	// Malformed formula errors out.
	if _, err := run([]string{"-formula", "satisfy{", path}, &strings.Builder{}); err == nil {
		t.Error("malformed formula accepted")
	}
}

func TestRunUsageErrors(t *testing.T) {
	var sb strings.Builder
	if _, err := run(nil, &sb); err == nil {
		t.Error("missing file argument accepted")
	}
	if _, err := run([]string{"/nonexistent/file.rota"}, &sb); err == nil {
		t.Error("missing file accepted")
	}
	bad := writeTemp(t, "job broken\n")
	if _, err := run([]string{bad}, &sb); err == nil {
		t.Error("malformed scenario accepted")
	}
}

func TestRunWorkflowScenario(t *testing.T) {
	scenario := `
resources 2:cpu@c0:(0,40),3:cpu@w1:(0,40),2:network@c0>w1:(0,40),2:network@w1>c0:(0,40)
job pipe 0 30
actor coord c0
send m1 w1 1
segment
eval 1
wait m1 0
actor m1 w1
eval 2
send coord c0 1
wait coord 0
`
	path := writeTemp(t, scenario)
	var sb strings.Builder
	code, err := run([]string{path}, &sb)
	if err != nil {
		t.Fatal(err)
	}
	out := sb.String()
	if code != 0 || !strings.Contains(out, "workflow") {
		t.Fatalf("code=%d:\n%s", code, out)
	}
	if !strings.Contains(out, "segment") {
		t.Errorf("segment timeline missing:\n%s", out)
	}
	// Tighten the deadline below the serialized chain: refused.
	tight := strings.Replace(scenario, "job pipe 0 30", "job pipe 0 3", 1)
	path = writeTemp(t, tight)
	var sb2 strings.Builder
	code, err = run([]string{path}, &sb2)
	if err != nil {
		t.Fatal(err)
	}
	if code != 2 || !strings.Contains(sb2.String(), "REFUSED") {
		t.Fatalf("tight workflow should be refused (code %d):\n%s", code, sb2.String())
	}
}

func TestRunStatePersistence(t *testing.T) {
	dir := t.TempDir()
	snap := filepath.Join(dir, "state.json")

	// First invocation: capacity 2 cpu over (0,8), admit one 8-unit job
	// and save the state.
	first := `
resources 2:cpu@l1:(0,8)
job one 0 8
actor a1 l1
eval 1
`
	path := writeTemp(t, first)
	var sb strings.Builder
	code, err := run([]string{"-save-state", snap, path}, &sb)
	if err != nil || code != 0 {
		t.Fatalf("first run: code=%d err=%v\n%s", code, err, sb.String())
	}

	// Second invocation restores the state: the committed capacity is
	// gone, so an identical second job fits (expiring half) but a third
	// does not.
	second := `
job two 0 8
actor b1 l1
eval 1
job three 0 8
actor c1 l1
eval 1
`
	path = writeTemp(t, second)
	var sb2 strings.Builder
	code, err = run([]string{"-state", snap, path}, &sb2)
	if err != nil {
		t.Fatal(err)
	}
	out := sb2.String()
	if !strings.Contains(out, "restored state") {
		t.Errorf("restore notice missing:\n%s", out)
	}
	if !strings.Contains(out, "two") || !strings.Contains(out, "ASSURED") {
		t.Errorf("second job should be assured:\n%s", out)
	}
	if code != 2 || !strings.Contains(out, "three") || !strings.Contains(out, "REFUSED") {
		t.Errorf("third job should be refused (code %d):\n%s", code, out)
	}
	// Missing snapshot errors.
	if _, err := run([]string{"-state", filepath.Join(dir, "nope.json"), path}, &strings.Builder{}); err == nil {
		t.Error("missing snapshot accepted")
	}
}
