// Command rotacheck decides deadline assurance for the jobs of a
// scenario file: for each job, in arrival order, it runs the Theorem-4
// admission check against the remaining free resources and prints the
// verdict with its witness break points.
//
// Usage:
//
//	rotacheck scenario.rota
//	rotacheck -independent scenario.rota   # check each job against the full Θ
//	echo "..." | rotacheck -
//
// Exit status is 0 when every job is accommodated, 2 when any is not.
package main

import (
	"flag"
	"fmt"
	"io"
	"os"
	"sort"

	"repro/internal/compute"
	"repro/internal/core"
	"repro/internal/formula"
	"repro/internal/scenario"
	"repro/internal/schedule"
)

func main() {
	code, err := run(os.Args[1:], os.Stdout)
	if err != nil {
		fmt.Fprintln(os.Stderr, "rotacheck:", err)
		os.Exit(1)
	}
	os.Exit(code)
}

func run(args []string, out io.Writer) (int, error) {
	fs := flag.NewFlagSet("rotacheck", flag.ContinueOnError)
	independent := fs.Bool("independent", false,
		"check every job against the full resource set instead of admitting cumulatively")
	verbose := fs.Bool("v", false, "print witness allocations, not just break points")
	query := fs.String("formula", "",
		`ROTA formula to evaluate on the committed path, e.g. "<> satisfy{8:cpu@l1}(0,20)" or "satisfy(j1)"`)
	stateIn := fs.String("state", "", "load the initial ROTA state from a snapshot instead of starting fresh")
	stateOut := fs.String("save-state", "", "write the final ROTA state (resources + commitments) to this snapshot file")
	if err := fs.Parse(args); err != nil {
		return 1, err
	}
	if fs.NArg() != 1 {
		return 1, fmt.Errorf("usage: rotacheck [-independent] [-v] <scenario-file|->")
	}
	var in io.Reader
	if fs.Arg(0) == "-" {
		in = os.Stdin
	} else {
		f, err := os.Open(fs.Arg(0))
		if err != nil {
			return 1, err
		}
		defer f.Close()
		in = f
	}
	sc, err := scenario.Parse(in, nil)
	if err != nil {
		return 1, err
	}
	fmt.Fprintf(out, "resources: %s\n", sc.Resources)

	var state core.State
	if *stateIn != "" {
		f, err := os.Open(*stateIn)
		if err != nil {
			return 1, err
		}
		state, err = core.RestoreState(f)
		f.Close()
		if err != nil {
			return 1, err
		}
		// Scenario resources join the restored state (acquisition rule).
		state, _ = core.Acquire(state, sc.Resources)
		fmt.Fprintf(out, "restored state at t=%d with %d commitments\n",
			state.Now, len(state.Commitments))
	} else {
		state = core.NewState(sc.Resources, 0)
	}
	allOK := true
	for _, job := range sc.Jobs {
		var plan schedule.Plan
		var admitErr error
		if *independent {
			fresh := core.NewState(sc.Resources, 0)
			plan, admitErr = core.AccommodateAdditional(fresh, job)
		} else {
			var next core.State
			next, plan, admitErr = core.Admit(state, job)
			if admitErr == nil {
				state = next
			}
		}
		if admitErr != nil {
			allOK = false
			fmt.Fprintf(out, "job %-12s REFUSED  (%v)\n", job.Name, admitErr)
			continue
		}
		fmt.Fprintf(out, "job %-12s ASSURED  finish by %d (deadline %d)\n",
			job.Name, plan.Finish, job.Deadline)
		actors := make([]string, 0, len(plan.Breaks))
		for a := range plan.Breaks {
			actors = append(actors, string(a))
		}
		sort.Strings(actors)
		for _, a := range actors {
			fmt.Fprintf(out, "  actor %-10s breaks %v\n", a, plan.Breaks[compute.ActorName(a)])
		}
		if *verbose {
			for _, alloc := range plan.Allocs {
				fmt.Fprintf(out, "  alloc %s phase %d: %s\n", alloc.Actor, alloc.Phase, alloc.Term)
			}
		}
	}
	// Workflow jobs (segment/wait directives) are decided independently
	// against the full resource set: the witness is per-segment timing.
	for _, w := range sc.Workflows {
		plan, err := schedule.FeasibleWorkflow(sc.Resources, w)
		if err != nil {
			allOK = false
			fmt.Fprintf(out, "job %-12s REFUSED  (%v)\n", w.Name, err)
			continue
		}
		fmt.Fprintf(out, "job %-12s ASSURED  finish by %d (deadline %d, workflow)\n",
			w.Name, plan.Finish, w.Deadline)
		order, _ := w.TopoOrder()
		for _, ref := range order {
			fmt.Fprintf(out, "  segment %-10v runs (%d → %d)\n", ref, plan.StartAt[ref], plan.DoneAt[ref])
		}
		if *verbose {
			for _, alloc := range plan.Allocs {
				fmt.Fprintf(out, "  alloc %v phase %d: %s\n", alloc.Ref, alloc.Phase, alloc.Term)
			}
		}
	}

	if *query != "" {
		jobsByName := make(map[string]compute.Distributed, len(sc.Jobs))
		for _, j := range sc.Jobs {
			jobsByName[j.Name] = j
		}
		f, err := formula.Parse(*query, jobsByName)
		if err != nil {
			return 1, err
		}
		// Materialize the committed path (admitted jobs execute their
		// plans; everything else expires) and evaluate at t=0.
		horizon := sc.Resources.Hull().End
		for _, j := range sc.Jobs {
			if j.Deadline > horizon {
				horizon = j.Deadline
			}
		}
		res := core.Run(state, horizon, 1)
		verdict, err := core.Eval(res.Path, 0, f)
		if err != nil {
			return 1, err
		}
		fmt.Fprintf(out, "formula %s = %v\n", f, verdict)
	}
	if *stateOut != "" {
		f, err := os.Create(*stateOut)
		if err != nil {
			return 1, err
		}
		werr := core.Snapshot(state, f)
		if cerr := f.Close(); werr == nil {
			werr = cerr
		}
		if werr != nil {
			return 1, werr
		}
	}
	if !allOK {
		return 2, nil
	}
	return 0, nil
}
