// Command rotatrace summarizes a JSONL simulation trace produced by
// `rotasim -trace` — event counts by kind, per-job response times
// (arrival → completion), and an optional per-tick activity timeline —
// and, in -spans mode, reconstructs distributed span trees: it merges
// span dumps from daemon /debug/rota/trace endpoints, saved dump files,
// span JSONL, or a sim trace (bridged into the same span model), then
// prints each tree with its critical path and per-phase latency
// breakdown, or flamegraph folded stacks.
//
// Usage:
//
//	rotasim -trace run.jsonl … && rotatrace run.jsonl
//	rotatrace -timeline run.jsonl
//	cat run.jsonl | rotatrace -
//	rotatrace -spans -trace ab12cd34ef56ab78 http://n1:8081 http://n2:8082
//	rotatrace -spans dump1.json dump2.json
//	rotatrace -spans -folded run.jsonl | flamegraph.pl > flame.svg
package main

import (
	"bufio"
	"bytes"
	"encoding/json"
	"errors"
	"flag"
	"fmt"
	"io"
	"net/http"
	"os"
	"sort"
	"strings"
	"time"

	"repro/internal/interval"
	"repro/internal/metrics"
	"repro/internal/obs/span"
	"repro/internal/trace"
)

func main() {
	if err := run(os.Args[1:], os.Stdout); err != nil {
		fmt.Fprintln(os.Stderr, "rotatrace:", err)
		os.Exit(1)
	}
}

func run(args []string, out io.Writer) error {
	fs := flag.NewFlagSet("rotatrace", flag.ContinueOnError)
	timeline := fs.Bool("timeline", false, "print a per-tick activity timeline")
	spansMode := fs.Bool("spans", false, "reconstruct span trees instead of summarizing a sim trace; sources may be daemon URLs, dump files, span JSONL, sim-trace JSONL, or -")
	traceID := fs.String("trace", "", "spans: trace ID to fetch and select (required when a source is a daemon URL)")
	folded := fs.Bool("folded", false, "spans: emit flamegraph folded stacks instead of trees")
	top := fs.Int("top", 5, "spans: when rendering many traces, print only the N slowest in full")
	if err := fs.Parse(args); err != nil {
		return err
	}
	if *spansMode {
		if fs.NArg() == 0 {
			return errors.New("usage: rotatrace -spans [-trace ID] [-folded] <url|dump.json|spans.jsonl|->...")
		}
		return runSpans(fs.Args(), *traceID, *folded, *top, out)
	}
	if fs.NArg() != 1 {
		return fmt.Errorf("usage: rotatrace [-timeline] <trace.jsonl|->")
	}
	var in io.Reader
	if fs.Arg(0) == "-" {
		in = os.Stdin
	} else {
		f, err := os.Open(fs.Arg(0))
		if err != nil {
			return err
		}
		defer f.Close()
		in = f
	}
	log, err := trace.ReadJSONL(in)
	if err != nil {
		return err
	}
	events := log.Events()
	if len(events) == 0 {
		fmt.Fprintln(out, "empty trace")
		return nil
	}

	// Counts by kind.
	counts := metrics.NewTable("events by kind", "kind", "count")
	kinds := []trace.Kind{
		trace.KindJoin, trace.KindRenege, trace.KindArrival, trace.KindAdmit,
		trace.KindReject, trace.KindComplete, trace.KindMiss, trace.KindViolation,
	}
	for _, k := range kinds {
		if n := len(log.Filter(k)); n > 0 {
			counts.AddRow(string(k), n)
		}
	}
	counts.Render(out)

	// Per-job response times.
	arrival := make(map[string]interval.Time)
	type outcome struct {
		at   interval.Time
		kind trace.Kind
	}
	finished := make(map[string]outcome)
	for _, e := range events {
		switch e.Kind {
		case trace.KindArrival:
			arrival[e.Job] = e.At
		case trace.KindComplete, trace.KindMiss:
			if _, seen := finished[e.Job]; !seen {
				finished[e.Job] = outcome{at: e.At, kind: e.Kind}
			}
		}
	}
	var responses []float64
	for job, oc := range finished {
		if oc.kind != trace.KindComplete {
			continue
		}
		if start, ok := arrival[job]; ok {
			responses = append(responses, float64(oc.at-start))
		}
	}
	if len(responses) > 0 {
		fmt.Fprintln(out)
		rt := metrics.NewTable("response time (arrival → on-time completion, ticks)",
			"n", "mean", "p50", "p95", "max")
		rt.AddRow(len(responses),
			metrics.Mean(responses),
			metrics.Percentile(responses, 50),
			metrics.Percentile(responses, 95),
			metrics.Percentile(responses, 100))
		rt.Render(out)
	}

	if *timeline {
		fmt.Fprintln(out)
		perTick := make(map[interval.Time]map[trace.Kind]int)
		for _, e := range events {
			if perTick[e.At] == nil {
				perTick[e.At] = make(map[trace.Kind]int)
			}
			perTick[e.At][e.Kind]++
		}
		ticks := make([]interval.Time, 0, len(perTick))
		for t := range perTick {
			ticks = append(ticks, t)
		}
		sort.Slice(ticks, func(i, j int) bool { return ticks[i] < ticks[j] })
		tl := metrics.NewTable("timeline (ticks with activity)",
			"t", "join", "renege", "arrive", "admit", "reject", "complete", "miss", "violation")
		for _, t := range ticks {
			row := perTick[t]
			tl.AddRow(t,
				row[trace.KindJoin], row[trace.KindRenege], row[trace.KindArrival],
				row[trace.KindAdmit], row[trace.KindReject], row[trace.KindComplete],
				row[trace.KindMiss], row[trace.KindViolation])
		}
		tl.Render(out)
	}
	return nil
}

// runSpans merges span records from every source, groups them into
// trees, and renders each tree with its critical path and per-phase
// latency breakdown (or folded stacks).
func runSpans(sources []string, traceID string, folded bool, top int, out io.Writer) error {
	var records []span.Record
	for _, src := range sources {
		recs, err := loadSpanSource(src, traceID)
		if err != nil {
			return err
		}
		records = append(records, recs...)
	}
	if len(records) == 0 {
		fmt.Fprintln(out, "no spans")
		return nil
	}

	var trees []*span.Tree
	if traceID != "" {
		trees = []*span.Tree{span.BuildTree(traceID, records)}
	} else {
		trees = span.BuildTrees(records)
	}
	if folded {
		for _, t := range trees {
			t.WriteFolded(out)
		}
		return nil
	}

	// Many traces (a bridged sim run, a whole store dump): render the
	// slowest in full, summarize the rest.
	sort.Slice(trees, func(i, j int) bool { return treeDurationUS(trees[i]) > treeDurationUS(trees[j]) })
	rendered := trees
	if top > 0 && len(trees) > top {
		rendered = trees[:top]
	}
	if len(rendered) < len(trees) {
		disconnected := 0
		for _, t := range trees {
			if !t.Connected() {
				disconnected++
			}
		}
		fmt.Fprintf(out, "%d traces (%d disconnected); rendering the %d slowest\n\n",
			len(trees), disconnected, len(rendered))
	}
	for _, t := range rendered {
		renderSpanTree(t, out)
	}
	return nil
}

func treeDurationUS(t *span.Tree) int64 {
	var max int64
	for _, r := range t.Roots {
		if r.DurationUS > max {
			max = r.DurationUS
		}
	}
	return max
}

func renderSpanTree(t *span.Tree, out io.Writer) {
	t.WriteTree(out)
	fmt.Fprintln(out)

	cp := metrics.NewTable("critical path", "kind", "node", "total µs", "self µs")
	for _, n := range t.CriticalPath() {
		cp.AddRow(n.Kind, n.Node, n.DurationUS, n.SelfUS())
	}
	cp.Render(out)
	fmt.Fprintln(out)

	phases := t.PhaseBreakdown()
	kinds := make([]string, 0, len(phases))
	for k := range phases {
		kinds = append(kinds, k)
	}
	sort.Strings(kinds)
	pb := metrics.NewTable("per-phase latency breakdown", "phase", "total µs")
	for _, k := range kinds {
		pb.AddRow(k, phases[k])
	}
	pb.Render(out)
	fmt.Fprintln(out)
}

// loadSpanSource reads one source of span records: a daemon base URL
// (fetches /debug/rota/trace/{id}), a file, or - for stdin. File
// contents are auto-detected: a span.Dump object, span-record JSONL, or
// a sim-trace JSONL (bridged into spans).
func loadSpanSource(src, traceID string) ([]span.Record, error) {
	if strings.HasPrefix(src, "http://") || strings.HasPrefix(src, "https://") {
		if traceID == "" {
			return nil, fmt.Errorf("fetching spans from %s needs -trace <id>", src)
		}
		return fetchSpanDump(strings.TrimSuffix(src, "/"), traceID)
	}
	var data []byte
	var err error
	if src == "-" {
		data, err = io.ReadAll(os.Stdin)
	} else {
		data, err = os.ReadFile(src)
	}
	if err != nil {
		return nil, err
	}
	return parseSpanData(data)
}

func fetchSpanDump(baseURL, traceID string) ([]span.Record, error) {
	client := &http.Client{Timeout: 10 * time.Second}
	url := baseURL + "/debug/rota/trace/" + traceID
	resp, err := client.Get(url)
	if err != nil {
		return nil, err
	}
	defer resp.Body.Close()
	data, err := io.ReadAll(io.LimitReader(resp.Body, 16<<20))
	if err != nil {
		return nil, err
	}
	if resp.StatusCode != http.StatusOK {
		return nil, fmt.Errorf("%s returned %d: %s", url, resp.StatusCode, bytes.TrimSpace(data))
	}
	var dump span.Dump
	if err := json.Unmarshal(data, &dump); err != nil {
		return nil, fmt.Errorf("%s returned unparsable dump: %w", url, err)
	}
	return dump.Spans, nil
}

// parseSpanData sniffs the first JSON object to pick a format: a "spans"
// key means a span.Dump, a "span" key means span-record JSONL, anything
// else is treated as a sim trace and bridged into the span model.
func parseSpanData(data []byte) ([]span.Record, error) {
	sc := bufio.NewScanner(bytes.NewReader(data))
	sc.Buffer(make([]byte, 0, 1<<20), 16<<20)
	var first map[string]json.RawMessage
	for sc.Scan() {
		line := bytes.TrimSpace(sc.Bytes())
		if len(line) == 0 {
			continue
		}
		if err := json.Unmarshal(line, &first); err != nil {
			return nil, fmt.Errorf("rotatrace: unparsable JSON line: %w", err)
		}
		break
	}
	if first == nil {
		return nil, nil
	}
	if _, ok := first["spans"]; ok {
		var dump span.Dump
		if err := json.Unmarshal(bytes.TrimSpace(data), &dump); err != nil {
			return nil, fmt.Errorf("rotatrace: bad span dump: %w", err)
		}
		return dump.Spans, nil
	}
	if _, ok := first["span"]; ok {
		var records []span.Record
		sc := bufio.NewScanner(bytes.NewReader(data))
		sc.Buffer(make([]byte, 0, 1<<20), 16<<20)
		for sc.Scan() {
			line := bytes.TrimSpace(sc.Bytes())
			if len(line) == 0 {
				continue
			}
			var rec span.Record
			if err := json.Unmarshal(line, &rec); err != nil {
				return nil, fmt.Errorf("rotatrace: bad span record: %w", err)
			}
			records = append(records, rec)
		}
		return records, sc.Err()
	}
	log, err := trace.ReadJSONL(bytes.NewReader(data))
	if err != nil {
		return nil, err
	}
	return span.Bridge(log), nil
}
