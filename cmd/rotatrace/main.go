// Command rotatrace summarizes a JSONL simulation trace produced by
// `rotasim -trace`: event counts by kind, per-job response times
// (arrival → completion), and an optional per-tick activity timeline.
//
// Usage:
//
//	rotasim -trace run.jsonl … && rotatrace run.jsonl
//	rotatrace -timeline run.jsonl
//	cat run.jsonl | rotatrace -
package main

import (
	"flag"
	"fmt"
	"io"
	"os"
	"sort"

	"repro/internal/interval"
	"repro/internal/metrics"
	"repro/internal/trace"
)

func main() {
	if err := run(os.Args[1:], os.Stdout); err != nil {
		fmt.Fprintln(os.Stderr, "rotatrace:", err)
		os.Exit(1)
	}
}

func run(args []string, out io.Writer) error {
	fs := flag.NewFlagSet("rotatrace", flag.ContinueOnError)
	timeline := fs.Bool("timeline", false, "print a per-tick activity timeline")
	if err := fs.Parse(args); err != nil {
		return err
	}
	if fs.NArg() != 1 {
		return fmt.Errorf("usage: rotatrace [-timeline] <trace.jsonl|->")
	}
	var in io.Reader
	if fs.Arg(0) == "-" {
		in = os.Stdin
	} else {
		f, err := os.Open(fs.Arg(0))
		if err != nil {
			return err
		}
		defer f.Close()
		in = f
	}
	log, err := trace.ReadJSONL(in)
	if err != nil {
		return err
	}
	events := log.Events()
	if len(events) == 0 {
		fmt.Fprintln(out, "empty trace")
		return nil
	}

	// Counts by kind.
	counts := metrics.NewTable("events by kind", "kind", "count")
	kinds := []trace.Kind{
		trace.KindJoin, trace.KindRenege, trace.KindArrival, trace.KindAdmit,
		trace.KindReject, trace.KindComplete, trace.KindMiss, trace.KindViolation,
	}
	for _, k := range kinds {
		if n := len(log.Filter(k)); n > 0 {
			counts.AddRow(string(k), n)
		}
	}
	counts.Render(out)

	// Per-job response times.
	arrival := make(map[string]interval.Time)
	type outcome struct {
		at   interval.Time
		kind trace.Kind
	}
	finished := make(map[string]outcome)
	for _, e := range events {
		switch e.Kind {
		case trace.KindArrival:
			arrival[e.Job] = e.At
		case trace.KindComplete, trace.KindMiss:
			if _, seen := finished[e.Job]; !seen {
				finished[e.Job] = outcome{at: e.At, kind: e.Kind}
			}
		}
	}
	var responses []float64
	for job, oc := range finished {
		if oc.kind != trace.KindComplete {
			continue
		}
		if start, ok := arrival[job]; ok {
			responses = append(responses, float64(oc.at-start))
		}
	}
	if len(responses) > 0 {
		fmt.Fprintln(out)
		rt := metrics.NewTable("response time (arrival → on-time completion, ticks)",
			"n", "mean", "p50", "p95", "max")
		rt.AddRow(len(responses),
			metrics.Mean(responses),
			metrics.Percentile(responses, 50),
			metrics.Percentile(responses, 95),
			metrics.Percentile(responses, 100))
		rt.Render(out)
	}

	if *timeline {
		fmt.Fprintln(out)
		perTick := make(map[interval.Time]map[trace.Kind]int)
		for _, e := range events {
			if perTick[e.At] == nil {
				perTick[e.At] = make(map[trace.Kind]int)
			}
			perTick[e.At][e.Kind]++
		}
		ticks := make([]interval.Time, 0, len(perTick))
		for t := range perTick {
			ticks = append(ticks, t)
		}
		sort.Slice(ticks, func(i, j int) bool { return ticks[i] < ticks[j] })
		tl := metrics.NewTable("timeline (ticks with activity)",
			"t", "join", "renege", "arrive", "admit", "reject", "complete", "miss", "violation")
		for _, t := range ticks {
			row := perTick[t]
			tl.AddRow(t,
				row[trace.KindJoin], row[trace.KindRenege], row[trace.KindArrival],
				row[trace.KindAdmit], row[trace.KindReject], row[trace.KindComplete],
				row[trace.KindMiss], row[trace.KindViolation])
		}
		tl.Render(out)
	}
	return nil
}
