package main

import (
	"encoding/json"
	"os"
	"path/filepath"
	"strings"
	"testing"

	"repro/internal/obs/span"
	"repro/internal/trace"
)

func writeTrace(t *testing.T) string {
	t.Helper()
	log := trace.NewLog()
	log.Add(trace.Event{At: 0, Kind: trace.KindJoin, Detail: "stuff"})
	log.Add(trace.Event{At: 1, Kind: trace.KindArrival, Job: "j1", Quantity: 8})
	log.Add(trace.Event{At: 1, Kind: trace.KindAdmit, Job: "j1"})
	log.Add(trace.Event{At: 2, Kind: trace.KindArrival, Job: "j2"})
	log.Add(trace.Event{At: 2, Kind: trace.KindReject, Job: "j2", Detail: "demand exceeds free availability"})
	log.Add(trace.Event{At: 5, Kind: trace.KindComplete, Job: "j1"})
	path := filepath.Join(t.TempDir(), "run.jsonl")
	f, err := os.Create(path)
	if err != nil {
		t.Fatal(err)
	}
	defer f.Close()
	if err := log.WriteJSONL(f); err != nil {
		t.Fatal(err)
	}
	return path
}

func TestRunSummary(t *testing.T) {
	path := writeTrace(t)
	var sb strings.Builder
	if err := run([]string{path}, &sb); err != nil {
		t.Fatal(err)
	}
	out := sb.String()
	for _, want := range []string{"events by kind", "arrival", "admit", "reject", "complete", "response time"} {
		if !strings.Contains(out, want) {
			t.Errorf("output missing %q:\n%s", want, out)
		}
	}
	// j1's response time is 4 ticks; mean of one sample = 4.
	if !strings.Contains(out, "4") {
		t.Errorf("response time 4 missing:\n%s", out)
	}
}

func TestRunTimeline(t *testing.T) {
	path := writeTrace(t)
	var sb strings.Builder
	if err := run([]string{"-timeline", path}, &sb); err != nil {
		t.Fatal(err)
	}
	if !strings.Contains(sb.String(), "timeline") {
		t.Errorf("timeline missing:\n%s", sb.String())
	}
}

func TestRunEmptyTrace(t *testing.T) {
	path := filepath.Join(t.TempDir(), "empty.jsonl")
	if err := os.WriteFile(path, nil, 0o600); err != nil {
		t.Fatal(err)
	}
	var sb strings.Builder
	if err := run([]string{path}, &sb); err != nil {
		t.Fatal(err)
	}
	if !strings.Contains(sb.String(), "empty trace") {
		t.Errorf("expected empty-trace notice, got %q", sb.String())
	}
}

func TestRunErrors(t *testing.T) {
	var sb strings.Builder
	if err := run(nil, &sb); err == nil {
		t.Error("missing argument accepted")
	}
	if err := run([]string{"/nonexistent.jsonl"}, &sb); err == nil {
		t.Error("missing file accepted")
	}
	bad := filepath.Join(t.TempDir(), "bad.jsonl")
	if err := os.WriteFile(bad, []byte("not json\n"), 0o600); err != nil {
		t.Fatal(err)
	}
	if err := run([]string{bad}, &sb); err == nil {
		t.Error("malformed trace accepted")
	}
}

// writeSpanDump writes a two-node span dump pair for one trace: the
// admit-side spans in one file, the remote participant's in another, so
// the test exercises cross-file merging the way cross-node dumps merge.
func writeSpanDump(t *testing.T) (string, string) {
	t.Helper()
	dir := t.TempDir()
	local := span.Dump{Trace: "t1", Spans: []span.Record{
		{Trace: "t1", ID: "a", Kind: span.KindCoordinate, Node: "n1", StartUnixNS: 0, DurationUS: 500},
		{Trace: "t1", ID: "b", Parent: "a", Kind: span.KindRPC, Node: "n1", StartUnixNS: 100_000, DurationUS: 300},
	}}
	remote := span.Dump{Trace: "t1", Spans: []span.Record{
		{Trace: "t1", ID: "c", Parent: "b", Kind: span.KindPrepare, Node: "n2", StartUnixNS: 150_000, DurationUS: 100},
	}}
	p1 := filepath.Join(dir, "n1.json")
	p2 := filepath.Join(dir, "n2.json")
	for path, dump := range map[string]span.Dump{p1: local, p2: remote} {
		data, err := json.Marshal(dump)
		if err != nil {
			t.Fatal(err)
		}
		if err := os.WriteFile(path, data, 0o600); err != nil {
			t.Fatal(err)
		}
	}
	return p1, p2
}

func TestRunSpansMergesDumps(t *testing.T) {
	p1, p2 := writeSpanDump(t)
	var sb strings.Builder
	if err := run([]string{"-spans", "-trace", "t1", p1, p2}, &sb); err != nil {
		t.Fatal(err)
	}
	out := sb.String()
	for _, want := range []string{"trace t1", "coordinate", "n2:prepare", "critical path", "per-phase latency breakdown"} {
		if !strings.Contains(out, want) {
			t.Errorf("span output missing %q:\n%s", want, out)
		}
	}
	if strings.Contains(out, "DISCONNECTED") {
		t.Errorf("merged dumps should form a connected tree:\n%s", out)
	}
}

func TestRunSpansFolded(t *testing.T) {
	p1, p2 := writeSpanDump(t)
	var sb strings.Builder
	if err := run([]string{"-spans", "-folded", p1, p2}, &sb); err != nil {
		t.Fatal(err)
	}
	// Self times: coordinate 500-300=200, rpc 300-100=200, prepare 100.
	for _, want := range []string{
		"n1:coordinate 200",
		"n1:coordinate;n1:rpc 200",
		"n1:coordinate;n1:rpc;n2:prepare 100",
	} {
		if !strings.Contains(sb.String(), want) {
			t.Errorf("folded output missing %q:\n%s", want, sb.String())
		}
	}
}

func TestRunSpansBridgesSimTrace(t *testing.T) {
	path := writeTrace(t)
	var sb strings.Builder
	if err := run([]string{"-spans", path}, &sb); err != nil {
		t.Fatal(err)
	}
	out := sb.String()
	for _, want := range []string{"trace sim-j1", "sim.job", "capacity"} {
		if !strings.Contains(out, want) {
			t.Errorf("bridged sim output missing %q:\n%s", want, out)
		}
	}
}

func TestRunSpansErrors(t *testing.T) {
	var sb strings.Builder
	if err := run([]string{"-spans"}, &sb); err == nil {
		t.Error("span mode with no sources accepted")
	}
	if err := run([]string{"-spans", "http://127.0.0.1:1"}, &sb); err == nil {
		t.Error("daemon URL without -trace accepted")
	}
}
