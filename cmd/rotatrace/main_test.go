package main

import (
	"os"
	"path/filepath"
	"strings"
	"testing"

	"repro/internal/trace"
)

func writeTrace(t *testing.T) string {
	t.Helper()
	log := trace.NewLog()
	log.Add(trace.Event{At: 0, Kind: trace.KindJoin, Detail: "stuff"})
	log.Add(trace.Event{At: 1, Kind: trace.KindArrival, Job: "j1", Quantity: 8})
	log.Add(trace.Event{At: 1, Kind: trace.KindAdmit, Job: "j1"})
	log.Add(trace.Event{At: 2, Kind: trace.KindArrival, Job: "j2"})
	log.Add(trace.Event{At: 2, Kind: trace.KindReject, Job: "j2", Detail: "no capacity"})
	log.Add(trace.Event{At: 5, Kind: trace.KindComplete, Job: "j1"})
	path := filepath.Join(t.TempDir(), "run.jsonl")
	f, err := os.Create(path)
	if err != nil {
		t.Fatal(err)
	}
	defer f.Close()
	if err := log.WriteJSONL(f); err != nil {
		t.Fatal(err)
	}
	return path
}

func TestRunSummary(t *testing.T) {
	path := writeTrace(t)
	var sb strings.Builder
	if err := run([]string{path}, &sb); err != nil {
		t.Fatal(err)
	}
	out := sb.String()
	for _, want := range []string{"events by kind", "arrival", "admit", "reject", "complete", "response time"} {
		if !strings.Contains(out, want) {
			t.Errorf("output missing %q:\n%s", want, out)
		}
	}
	// j1's response time is 4 ticks; mean of one sample = 4.
	if !strings.Contains(out, "4") {
		t.Errorf("response time 4 missing:\n%s", out)
	}
}

func TestRunTimeline(t *testing.T) {
	path := writeTrace(t)
	var sb strings.Builder
	if err := run([]string{"-timeline", path}, &sb); err != nil {
		t.Fatal(err)
	}
	if !strings.Contains(sb.String(), "timeline") {
		t.Errorf("timeline missing:\n%s", sb.String())
	}
}

func TestRunEmptyTrace(t *testing.T) {
	path := filepath.Join(t.TempDir(), "empty.jsonl")
	if err := os.WriteFile(path, nil, 0o600); err != nil {
		t.Fatal(err)
	}
	var sb strings.Builder
	if err := run([]string{path}, &sb); err != nil {
		t.Fatal(err)
	}
	if !strings.Contains(sb.String(), "empty trace") {
		t.Errorf("expected empty-trace notice, got %q", sb.String())
	}
}

func TestRunErrors(t *testing.T) {
	var sb strings.Builder
	if err := run(nil, &sb); err == nil {
		t.Error("missing argument accepted")
	}
	if err := run([]string{"/nonexistent.jsonl"}, &sb); err == nil {
		t.Error("missing file accepted")
	}
	bad := filepath.Join(t.TempDir(), "bad.jsonl")
	if err := os.WriteFile(bad, []byte("not json\n"), 0o600); err != nil {
		t.Fatal(err)
	}
	if err := run([]string{bad}, &sb); err == nil {
		t.Error("malformed trace accepted")
	}
}
